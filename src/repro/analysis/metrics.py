"""Table-1 metric computation over one loop's DDG (paper §4.1).

- *Average Concurrency*: mean parallel-partition size over the partitions
  of **all** candidate instructions (singletons included).
- *Percent Vec. Ops (unit)*: operations in non-singleton unit-stride
  subpartitions, as a percentage of all candidate operations in the graph.
- *Average Vec. Size (unit)*: mean size of those subpartitions.
- *Percent / Average (non-unit)*: same pair, for fixed non-unit-stride
  subpartitions formed from the leftovers (§3.3).

Only non-singleton parallel partitions are subdivided by stride — members
of singleton partitions are on dependence chains and not vectorizable.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.candidates import candidate_sids
from repro.analysis.nonunit import nonunit_stride_subpartitions
from repro.analysis.stride import unit_stride_subpartitions
from repro.analysis.timestamps import (
    batched_parallel_partitions,
    parallel_partitions,
)
from repro.analysis.report import InstructionReport, LoopReport
from repro.ddg.graph import DDG
from repro.ir.module import Module
from repro.obs import get_telemetry


def _elem_size(module: Optional[Module], sid: int, default: int = 8) -> int:
    if module is None:
        return default
    instr = module.instruction(sid)
    if instr.result is not None:
        return instr.result.type.sizeof()
    return default


def _line_of(module: Optional[Module], sid: int) -> int:
    if module is None:
        return 0
    return module.instruction(sid).line


def _mnemonic_of(module: Optional[Module], sid: int, ddg: DDG) -> str:
    if module is not None:
        return module.instruction(sid).mnemonic
    from repro.ir.instructions import OPCODE_INFO, Opcode

    opcode = ddg.sid_opcodes.get(sid)
    if opcode is not None:
        return OPCODE_INFO[Opcode(opcode)].mnemonic
    return "?"


def instruction_metrics(
    ddg: DDG,
    sid: int,
    module: Optional[Module] = None,
    elem_size: Optional[int] = None,
    relax_reductions: bool = False,
    partitions: Optional[Dict[int, List[int]]] = None,
) -> InstructionReport:
    """Run the full per-instruction analysis: Algorithm 1, unit-stride
    subpartitioning, and the non-unit-stride waitlist scan.

    With ``relax_reductions``, dependences through detected reduction
    accumulators are ignored (the paper's future-work extension),
    modeling a reduction-vectorizing compiler.

    ``partitions`` lets a caller that already ran Algorithm 1 (the
    batched engine in :func:`loop_metrics`) pass its result in; otherwise
    one scalar pass is made here.
    """
    if elem_size is None:
        elem_size = _elem_size(module, sid)
    if partitions is None:
        if relax_reductions:
            from repro.analysis.reductions import (
                reduction_relaxed_partitions,
            )

            partitions = reduction_relaxed_partitions(ddg, sid)
        else:
            partitions = parallel_partitions(ddg, sid)
    num_instances = sum(len(p) for p in partitions.values())
    unit_sizes: List[int] = []
    nonunit_sizes: List[int] = []
    unit_ops = 0
    nonunit_ops = 0
    for members in partitions.values():
        if len(members) < 2:
            continue
        subs = unit_stride_subpartitions(ddg, members, elem_size)
        leftovers: List[int] = []
        for sub in subs:
            unit_sizes.append(len(sub))
            if len(sub) >= 2:
                unit_ops += len(sub)
            else:
                leftovers.extend(sub)
        if leftovers:
            nsubs = nonunit_stride_subpartitions(ddg, leftovers)
            for sub in nsubs:
                nonunit_sizes.append(len(sub))
                if len(sub) >= 2:
                    nonunit_ops += len(sub)
    return InstructionReport(
        sid=sid,
        mnemonic=_mnemonic_of(module, sid, ddg),
        line=_line_of(module, sid),
        num_instances=num_instances,
        num_partitions=len(partitions),
        avg_partition_size=(
            num_instances / len(partitions) if partitions else 0.0
        ),
        unit_vec_ops=unit_ops,
        unit_subpartition_sizes=unit_sizes,
        nonunit_vec_ops=nonunit_ops,
        nonunit_subpartition_sizes=nonunit_sizes,
    )


def loop_metrics(
    ddg: DDG,
    module: Optional[Module] = None,
    loop_name: str = "",
    include_integer: bool = False,
    relax_reductions: bool = False,
    tel=None,
    partitions_by_sid: Optional[Dict[int, Dict[int, List[int]]]] = None,
) -> LoopReport:
    """Aggregate the paper's loop-level metrics over all candidate
    instructions in the graph.

    Algorithm 1 runs through the batched engine: one K-wide topological
    scan for all K candidate instructions instead of K scalar passes.
    ``partitions_by_sid`` lets a caller that already holds the scan's
    partitions (the explain driver keeps the packed scan for witness
    extraction) pass them in, skipping the second pass; it must cover
    every candidate sid of the graph.
    """
    if tel is None:
        tel = get_telemetry()
    report = LoopReport(loop_name=loop_name)
    total_ops = 0
    total_partitions = 0
    unit_ops = 0
    nonunit_ops = 0
    unit_sizes: List[int] = []
    nonunit_sizes: List[int] = []
    sids = candidate_sids(ddg, include_integer)
    removed_by_sid = None
    if relax_reductions and sids:
        from repro.analysis.reductions import removed_edges_by_sid

        removed_by_sid = removed_edges_by_sid(ddg, sids)
    if partitions_by_sid is None:
        with tel.span("algorithm1"):
            partitions_by_sid = batched_parallel_partitions(
                ddg, sids, removed_by_sid
            )
        if tel.enabled:
            tel.count("algorithm1.scans", 1 if sids else 0)
            tel.count("algorithm1.candidate_sids", len(sids))
            tel.count("algorithm1.lanes_packed", len(sids))
    with tel.span("stride"):
        for sid in sids:
            ir = instruction_metrics(ddg, sid, module,
                                     relax_reductions=relax_reductions,
                                     partitions=partitions_by_sid[sid])
            report.instructions.append(ir)
            total_ops += ir.num_instances
            total_partitions += ir.num_partitions
            unit_ops += ir.unit_vec_ops
            nonunit_ops += ir.nonunit_vec_ops
            unit_sizes.extend(
                s for s in ir.unit_subpartition_sizes if s >= 2
            )
            nonunit_sizes.extend(
                s for s in ir.nonunit_subpartition_sizes if s >= 2
            )
    if tel.enabled:
        tel.count("algorithm1.partitions", total_partitions)
        tel.count("algorithm1.candidate_ops", total_ops)
        tel.count("stride.unit_subpartitions", len(unit_sizes))
        tel.count("stride.nonunit_subpartitions", len(nonunit_sizes))
    report.total_candidate_ops = total_ops
    if total_partitions:
        report.avg_concurrency = total_ops / total_partitions
    if total_ops:
        report.percent_vec_unit = 100.0 * unit_ops / total_ops
        report.percent_vec_nonunit = 100.0 * nonunit_ops / total_ops
    if unit_sizes:
        report.avg_vec_size_unit = sum(unit_sizes) / len(unit_sizes)
    if nonunit_sizes:
        report.avg_vec_size_nonunit = sum(nonunit_sizes) / len(nonunit_sizes)
    return report
