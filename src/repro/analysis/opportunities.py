"""Missed-opportunity classification — the paper's compiler-writer use
case (§1, use case 3; §4.2).

For every loop where the dynamic analysis finds potential the static
vectorizer does not exploit, cross-reference the vectorizer's machine-
readable refusal reasons with the dynamic metrics and classify *why* the
opportunity is missed:

- ``STATIC_TRANSFORM``: all refusal causes are statically analyzable
  (loop-carried dependences among affine accesses, scalar recurrences)
  while part of the computation is provably independent — the
  Gauss-Seidel case, where "all the information needed to transform the
  code is actually derivable from purely static analysis" (§4.4).
- ``CONTROL_FLOW``: data-dependent branching blocks the vectorizer; the
  PDE-solver case (hoisting / if-conversion territory).
- ``LAYOUT``: the refusal is non-unit stride, or the dynamic potential
  is predominantly at fixed non-unit stride — a data-layout
  transformation (milc, bwaves) is indicated.
- ``RUNTIME_DEPENDENT``: irregular subscripts or possible aliasing —
  vectorization needs information beyond static analysis (gromacs,
  where correctness rests on properties of the input data).
- ``ALREADY_VECTORIZED`` / ``NO_POTENTIAL``: nothing for the compiler
  writer here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.report import LoopReport
from repro.vectorizer.autovec import LoopDecision


class OpportunityKind(enum.Enum):
    ALREADY_VECTORIZED = "already-vectorized"
    NO_POTENTIAL = "no-potential"
    STATIC_TRANSFORM = "static-transform"
    CONTROL_FLOW = "control-flow"
    LAYOUT = "layout-transformation"
    RUNTIME_DEPENDENT = "runtime-dependent"


@dataclass
class Opportunity:
    """One classified loop."""

    loop_name: str
    kind: OpportunityKind
    potential: float  # max of unit / non-unit %VecOps
    packed: float
    reasons: List[str]
    advice: str
    #: ids of the explain-layer witnesses backing this classification
    #: (populated when :func:`classify_loop` is given an ExplainReport).
    witness_ids: List[str] = field(default_factory=list)

    def row(self) -> str:
        return (
            f"{self.loop_name:20} {self.kind.value:22} "
            f"potential {self.potential:5.1f}%  packed {self.packed:5.1f}%  "
            f"{self.advice}"
        )


_ADVICE = {
    OpportunityKind.ALREADY_VECTORIZED: "leave alone",
    OpportunityKind.NO_POTENTIAL: "algorithmic rewrite required",
    OpportunityKind.STATIC_TRANSFORM:
        "compiler-transformable: loop distribution / reordering "
        "(Gauss-Seidel pattern, §4.4)",
    OpportunityKind.CONTROL_FLOW:
        "hoist or specialize the branch (PDE-solver pattern, §4.4)",
    OpportunityKind.LAYOUT:
        "change the data layout: transpose / AoS->SoA (§3.3, milc)",
    OpportunityKind.RUNTIME_DEPENDENT:
        "needs runtime or domain knowledge (gromacs pattern, §4.4)",
}

#: Refusal-reason fragments that imply the blocker is only visible (or
#: resolvable) at run time.
_RUNTIME_MARKERS = ("data-dependent", "alias", "pointer")
_CONTROL_MARKERS = ("control flow", "break", "select", "return inside")
_LAYOUT_MARKERS = ("non-unit stride",)
_STATIC_MARKERS = (
    "loop-carried dependence",
    "scalar recurrence",
    "same location every iteration",
    "weak SIV",
    "symbolic subscript",
    "non-affine",
)

_POTENTIAL_THRESHOLD = 20.0


def classify_loop(
    report: LoopReport,
    decision: Optional[LoopDecision],
    explain=None,
) -> Opportunity:
    """Classify one analyzed loop given its vectorizer decision.

    ``explain`` optionally attaches an
    :class:`repro.explain.driver.ExplainReport` for the same loop, whose
    witness ids then back the classification — a consumer can follow
    them into the run report's ``explain`` mapping for the concrete
    dependence chains and stride breaks behind the verdict.
    """
    potential = max(report.percent_vec_unit, report.percent_vec_nonunit)
    reasons = list(decision.reasons) if decision is not None else []

    if decision is not None and decision.vectorized:
        kind = OpportunityKind.ALREADY_VECTORIZED
    elif report.percent_packed >= 60.0:
        kind = OpportunityKind.ALREADY_VECTORIZED
    elif potential < _POTENTIAL_THRESHOLD:
        kind = OpportunityKind.NO_POTENTIAL
    else:
        kind = _classify_refusal(report, reasons)

    return Opportunity(
        loop_name=report.loop_name,
        kind=kind,
        potential=potential,
        packed=report.percent_packed,
        reasons=reasons,
        advice=_ADVICE[kind],
        witness_ids=explain.witness_ids() if explain is not None else [],
    )


def _classify_refusal(report: LoopReport,
                      reasons: Sequence[str]) -> OpportunityKind:
    text = " | ".join(reasons).lower()

    def has(markers) -> bool:
        return any(m in text for m in markers)

    if has(_RUNTIME_MARKERS):
        return OpportunityKind.RUNTIME_DEPENDENT
    if has(_CONTROL_MARKERS):
        return OpportunityKind.CONTROL_FLOW
    if has(_LAYOUT_MARKERS):
        return OpportunityKind.LAYOUT
    if has(_STATIC_MARKERS):
        # Purely static blockers (the Gauss-Seidel pattern) — unless the
        # dynamic potential itself asks for a layout change *and* the
        # unit-stride share is negligible.
        if (
            report.percent_vec_nonunit > report.percent_vec_unit
            and report.percent_vec_unit < _POTENTIAL_THRESHOLD / 2
        ):
            return OpportunityKind.LAYOUT
        return OpportunityKind.STATIC_TRANSFORM
    # No informative refusal recorded for this loop (outer loop or
    # missing decision): decide from the dynamic shape alone.
    if report.percent_vec_nonunit > report.percent_vec_unit:
        return OpportunityKind.LAYOUT
    return OpportunityKind.STATIC_TRANSFORM


def subtree_reasons(module, decisions: Sequence[LoopDecision],
                    loop_name: str,
                    dyn_parent=None) -> List[str]:
    """Refusal reasons of a loop and all loops nested in it.

    An outer loop's own decision usually says only "contains an inner
    loop"; the informative refusals live on the nest's inner loops.
    ``dyn_parent`` (loop id -> observed dynamic parent id, from an
    interpreter run) extends the nesting across function calls — e.g.
    the PDE solver's branchy loops live in a function called from the
    analyzed grid loop.
    """
    from repro.vectorizer.autovec import decisions_by_name

    by_name = decisions_by_name(list(decisions))
    root = module.loop_by_name(loop_name)
    if root is None:
        d = by_name.get(loop_name)
        return list(d.reasons) if d is not None else []
    ids = {root.loop_id}
    changed = True
    while changed:
        changed = False
        for info in module.loops.values():
            if info.loop_id in ids:
                continue
            parents = {info.parent_id}
            if dyn_parent is not None:
                parents.add(dyn_parent.get(info.loop_id))
            if parents & ids:
                ids.add(info.loop_id)
                changed = True
    reasons: List[str] = []
    for loop_id in sorted(ids):
        info = module.loops[loop_id]
        d = by_name.get(f"{info.function}:{info.header_line}") or (
            by_name.get(info.label) if info.label else None
        )
        if d is not None:
            for reason in d.reasons:
                if reason not in reasons and reason != (
                    "contains an inner loop"
                ):
                    reasons.append(reason)
    return reasons


def classify_program(
    reports: Sequence[LoopReport],
    decisions: Sequence[LoopDecision],
    module=None,
    dyn_parent=None,
) -> List[Opportunity]:
    """Classify every reported loop of a program.

    With ``module`` given, an outer loop is judged by the union of its
    subtree's refusal reasons (static nesting, plus dynamic nesting
    through calls when ``dyn_parent`` is supplied).
    """
    from repro.vectorizer.autovec import decisions_by_name

    by_name = decisions_by_name(list(decisions))
    out = []
    for report in reports:
        decision = by_name.get(report.loop_name)
        opp = classify_loop(report, decision)
        if module is not None and opp.kind not in (
            OpportunityKind.ALREADY_VECTORIZED,
            OpportunityKind.NO_POTENTIAL,
        ):
            merged = subtree_reasons(module, decisions, report.loop_name,
                                     dyn_parent)
            if merged:
                opp.reasons = merged
                opp.kind = _classify_refusal(report, merged)
                opp.advice = _ADVICE[opp.kind]
        out.append(opp)
    return out
