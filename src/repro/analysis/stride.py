"""§3.2 — subdividing parallel partitions by contiguous memory access.

Members of a parallel partition are independent, but efficient SIMD
execution also needs contiguous (unit-stride) or splat (zero-stride)
operands.  Following the paper: sort the partition's instances by the
memory addresses of their operands (the *access tuple*: per-operand source
address plus the address the result was stored to, with artificial address
0 for values not obtained from memory), then scan, closing the current
subpartition whenever the observed stride is (1) non-zero and non-unit, or
(2) different from the previously observed stride.

"Unit" means one element: the distance equals the data-type size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class StrideBreak:
    """One §3.2 split point: the pair of dynamic instances whose observed
    stride closed a unit-stride subpartition.

    ``prev_node``/``node`` are DDG node indices in sorted-access order;
    the tuples are their full access tuples (operand source addresses +
    store target), ``stride`` their componentwise difference.  The
    explain layer turns these into stride-break provenance witnesses."""

    prev_node: int
    node: int
    prev_tuple: Tuple[int, ...]
    tuple: Tuple[int, ...]
    stride: Tuple[int, ...]


def access_tuples(ddg, nodes: Sequence[int]) -> List[Tuple[int, ...]]:
    """The access tuple of each node: operand source addresses + store
    target (0-padded entries mean "not from memory")."""
    return [ddg.addrs[i] + (ddg.store_addrs[i],) for i in nodes]


def _tuple_stride(
    prev: Tuple[int, ...], cur: Tuple[int, ...]
) -> Tuple[int, ...]:
    return tuple(c - p for p, c in zip(prev, cur))


def _is_unit_or_zero(stride: Tuple[int, ...], elem_size: int) -> bool:
    """Every component either repeats the same address (splat / constant
    operand) or advances by exactly one element."""
    return all(s == 0 or s == elem_size for s in stride)


def unit_stride_subpartitions(
    ddg,
    partition: Sequence[int],
    elem_size: int,
    breaks: Optional[List[StrideBreak]] = None,
) -> List[List[int]]:
    """Split one parallel partition into unit/zero-stride subpartitions.

    Returns lists of node indices; every member of the input appears in
    exactly one subpartition.  Singleton outputs are the instances that
    found no contiguous neighbors — §3.3 reconsiders them.

    ``breaks``, when given, collects one :class:`StrideBreak` per split
    point (the concrete instance pair whose stride closed a run) — the
    metrics are unchanged; only provenance is recorded.
    """
    if not partition:
        return []
    keyed = sorted(
        zip(access_tuples(ddg, partition), partition), key=lambda kv: kv[0]
    )
    subpartitions: List[List[int]] = []
    prev_node = keyed[0][1]
    current = [prev_node]
    current_tuple = keyed[0][0]
    current_stride = None
    for tup, node in keyed[1:]:
        stride = _tuple_stride(current_tuple, tup)
        acceptable = _is_unit_or_zero(stride, elem_size)
        if acceptable and (current_stride is None or stride == current_stride):
            current.append(node)
        else:
            subpartitions.append(current)
            if breaks is not None:
                breaks.append(StrideBreak(prev_node, node, current_tuple,
                                          tup, stride))
            current = [node]
            stride = None
        current_tuple = tup
        current_stride = stride
        prev_node = node
    subpartitions.append(current)
    return subpartitions


def vectorizable_ops(subpartitions: Sequence[Sequence[int]]) -> int:
    """Operations inside non-singleton subpartitions (potentially packed)."""
    return sum(len(s) for s in subpartitions if len(s) >= 2)


def average_subpartition_size(
    subpartitions: Sequence[Sequence[int]],
) -> float:
    """Mean size of non-singleton subpartitions (the paper's Average
    Vec. Size)."""
    sizes = [len(s) for s in subpartitions if len(s) >= 2]
    if not sizes:
        return 0.0
    return sum(sizes) / len(sizes)
