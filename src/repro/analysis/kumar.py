"""Baseline: Kumar-style global critical-path analysis (paper §2.1).

Every DDG node gets timestamp ``max(pred timestamps) + weight``; the
histogram of timestamps is the fine-grained parallelism profile, the
maximum timestamp is the critical path, and N / critical-path is the
average parallelism.  This implicitly models the best parallel execution
over all dependence-preserving reorderings — but, as the paper's Fig. 1
discussion shows, its same-timestamp groups interleave instances of
different statements and cannot expose per-statement vectorizable
partitions.

``weights="unit"`` charges every node one time step (Kumar's model);
``weights="candidates"`` charges only candidate FP operations, giving a
floating-point critical path that is directly comparable with Algorithm 1
timestamps on traces that include loop-bookkeeping instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.candidates import candidate_opcodes
from repro.ddg.graph import DDG
from repro.errors import AnalysisError


@dataclass
class ParallelismProfile:
    """Kumar's output: operations available at each time step."""

    histogram: Dict[int, int] = field(default_factory=dict)
    critical_path: int = 0
    total_ops: int = 0

    @property
    def average_parallelism(self) -> float:
        if self.critical_path == 0:
            return 0.0
        return self.total_ops / self.critical_path


def kumar_timestamps(ddg: DDG, weights: str = "unit") -> List[int]:
    """Global earliest-start timestamps; see module docstring for weights."""
    if weights == "unit":
        node_weight = [1] * len(ddg)
    elif weights == "candidates":
        ops = candidate_opcodes()
        node_weight = [1 if opc in ops else 0 for opc in ddg.opcodes]
    else:
        raise AnalysisError(f"unknown weight scheme {weights!r}")
    ts = [0] * len(ddg)
    indices = ddg.pred_indices
    offsets = ddg.pred_offsets
    for i in range(len(ddg)):
        t = 0
        for j in range(offsets[i], offsets[i + 1]):
            tp = ts[indices[j]]
            if tp > t:
                t = tp
        ts[i] = t + node_weight[i]
    return ts


def kumar_profile(ddg: DDG, weights: str = "unit") -> ParallelismProfile:
    """Parallelism profile: histogram over timestamps of weighted nodes."""
    ts = kumar_timestamps(ddg, weights)
    if weights == "candidates":
        ops = candidate_opcodes()
        counted = [i for i, opc in enumerate(ddg.opcodes) if opc in ops]
    else:
        counted = list(range(len(ddg)))
    histogram: Dict[int, int] = {}
    for i in counted:
        histogram[ts[i]] = histogram.get(ts[i], 0) + 1
    critical = max(ts) if ts else 0
    return ParallelismProfile(
        histogram=histogram, critical_path=critical, total_ops=len(counted)
    )


def kumar_partitions(ddg: DDG, target_sid: int,
                     weights: str = "unit") -> Dict[int, List[int]]:
    """Group the instances of one static instruction by *global* timestamp
    — the partitioning Fig. 1(a) shows, which under-exposes parallelism
    compared with Algorithm 1's per-instruction timestamps."""
    ts = kumar_timestamps(ddg, weights)
    out: Dict[int, List[int]] = {}
    for i, sid in enumerate(ddg.sids):
        if sid == target_sid:
            out.setdefault(ts[i], []).append(i)
    return out
