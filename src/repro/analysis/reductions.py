"""Reduction-chain detection and dependence relaxation.

The paper treats reduction updates (``s += a[i]``) as dependence chains —
correctly non-vectorizable under its model — but notes that icc *does*
vectorize reductions, and proposes as future work "to identify and remove
dependence edges that are due to updates of reduction variables" (§3,
§4.1).  This module implements that extension:

- :func:`detect_reduction_chains` finds candidate instructions whose
  instances accumulate into a fixed memory location (store target equals
  one of the operand source addresses);
- :func:`reduction_relaxed_partitions` re-runs Algorithm 1 with the
  store->load dependence edges of those accumulator locations removed,
  exposing the additional parallelism a reduction-aware vectorizer gets.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.timestamps import parallel_partitions
from repro.ddg.graph import DDG
from repro.ir.instructions import Opcode

_LOAD = int(Opcode.LOAD)
_STORE = int(Opcode.STORE)

#: Only associative accumulations qualify (fadd/fsub chains; a product
#: reduction via fmul also qualifies mathematically and is included).
_REDUCIBLE = frozenset({int(Opcode.FADD), int(Opcode.FSUB), int(Opcode.FMUL)})


def cached_reduction_chains(ddg: DDG) -> Dict[int, Set[int]]:
    """:func:`detect_reduction_chains`, computed once per DDG.

    The detection scan is a whole-graph pass; per-candidate-sid callers
    (``loop_metrics`` analyzes every candidate of a loop) share one result
    cached on the graph object itself.
    """
    chains = ddg.__dict__.get("_reduction_chains")
    if chains is None:
        chains = detect_reduction_chains(ddg)
        ddg.__dict__["_reduction_chains"] = chains
    return chains


def removed_edges_by_sid(
    ddg: DDG, sids: Sequence[int]
) -> Dict[int, Set[Tuple[int, int]]]:
    """Reduction edges to ignore, keyed by sid — the batched engine's
    ``removed_edges_by_sid`` input.  Sids without a detected reduction
    chain are simply absent (their lane keeps every edge)."""
    chains = cached_reduction_chains(ddg)
    return {
        sid: reduction_edges(ddg, chains[sid])
        for sid in sids
        if sid in chains
    }


def detect_reduction_chains(ddg: DDG) -> Dict[int, Set[int]]:
    """Find accumulator locations per candidate static instruction.

    Returns ``{sid: {accumulator addresses}}`` for instructions where at
    least two instances both read and write the same address (the
    ``s += expr`` pattern: operand source address == store target)."""
    counts: Dict[Tuple[int, int], int] = {}
    for i, opcode in enumerate(ddg.opcodes):
        if opcode not in _REDUCIBLE:
            continue
        store_addr = ddg.store_addrs[i]
        if store_addr and store_addr in ddg.addrs[i]:
            key = (ddg.sids[i], store_addr)
            counts[key] = counts.get(key, 0) + 1
    chains: Dict[int, Set[int]] = {}
    for (sid, addr), count in counts.items():
        if count >= 2:
            chains.setdefault(sid, set()).add(addr)
    return chains


def reduction_edges(ddg: DDG, accumulators: Set[int]) -> Set[Tuple[int, int]]:
    """DDG edges carrying the reduction chain: store->load edges through
    an accumulator address.  Cached per (DDG, accumulator set)."""
    cache = ddg.__dict__.setdefault("_reduction_edge_cache", {})
    key = frozenset(accumulators)
    cached = cache.get(key)
    if cached is not None:
        return cached
    removed: Set[Tuple[int, int]] = set()
    store_nodes: Dict[int, List[int]] = {}
    for i, opcode in enumerate(ddg.opcodes):
        if opcode == _STORE and ddg.mem_addrs[i] in accumulators:
            store_nodes.setdefault(ddg.mem_addrs[i], []).append(i)
    stores_flat = {
        i for nodes in store_nodes.values() for i in nodes
    }
    for i, opcode in enumerate(ddg.opcodes):
        if opcode == _LOAD and ddg.mem_addrs[i] in accumulators:
            for p in ddg.pred_row(i):
                if p in stores_flat:
                    removed.add((p, i))
    cache[key] = removed
    return removed


def reduction_relaxed_partitions(
    ddg: DDG, sid: int
) -> Dict[int, List[int]]:
    """Algorithm 1 partitions for ``sid`` with its reduction dependences
    ignored.  If ``sid`` has no detected reduction chain, the result
    equals the unrelaxed partitioning."""
    chains = cached_reduction_chains(ddg)
    accumulators = chains.get(sid)
    if not accumulators:
        return parallel_partitions(ddg, sid)
    removed = reduction_edges(ddg, accumulators)
    return parallel_partitions(ddg, sid, removed_edges=removed)
