"""Report dataclasses and text formatting for analysis results.

:class:`LoopReport` corresponds to one row of the paper's Table 1 (or
Table 2/3): the loop's share of execution, how much of it the static
compiler packed, and the dynamic analysis metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class InstructionReport:
    """Per-static-instruction analysis detail."""

    sid: int
    mnemonic: str
    line: int
    num_instances: int
    num_partitions: int
    avg_partition_size: float
    unit_vec_ops: int
    unit_subpartition_sizes: List[int] = field(default_factory=list)
    nonunit_vec_ops: int = 0
    nonunit_subpartition_sizes: List[int] = field(default_factory=list)

    @property
    def avg_unit_size(self) -> float:
        sizes = [s for s in self.unit_subpartition_sizes if s >= 2]
        return sum(sizes) / len(sizes) if sizes else 0.0

    @property
    def avg_nonunit_size(self) -> float:
        sizes = [s for s in self.nonunit_subpartition_sizes if s >= 2]
        return sum(sizes) / len(sizes) if sizes else 0.0


@dataclass
class LoopReport:
    """One analyzed loop — one row of Table 1/2/3."""

    loop_name: str
    benchmark: str = ""
    percent_cycles: float = 0.0
    percent_packed: float = 0.0
    avg_concurrency: float = 0.0
    percent_vec_unit: float = 0.0
    avg_vec_size_unit: float = 0.0
    percent_vec_nonunit: float = 0.0
    avg_vec_size_nonunit: float = 0.0
    total_candidate_ops: int = 0
    instructions: List[InstructionReport] = field(default_factory=list)
    notes: str = ""

    def row(self) -> str:
        """Format as a Table-1-style row."""
        return (
            f"{self.benchmark:<18} {self.loop_name:<26} "
            f"{self.percent_cycles:6.1f}% {self.percent_packed:7.1f}% "
            f"{self.avg_concurrency:12.1f} "
            f"{self.percent_vec_unit:7.1f}% {self.avg_vec_size_unit:9.1f} "
            f"{self.percent_vec_nonunit:7.1f}% {self.avg_vec_size_nonunit:9.1f}"
        )

    @staticmethod
    def header() -> str:
        return (
            f"{'Benchmark':<18} {'Loop':<26} "
            f"{'Cycles':>7} {'Packed':>8} "
            f"{'AvgConcur':>12} "
            f"{'U.VecOps':>8} {'U.VecSz':>9} "
            f"{'N.VecOps':>8} {'N.VecSz':>9}"
        )


@dataclass
class BenchmarkReport:
    """All analyzed hot loops of one benchmark/workload."""

    benchmark: str
    loops: List[LoopReport] = field(default_factory=list)

    def table(self) -> str:
        lines = [LoopReport.header()]
        lines.extend(loop.row() for loop in self.loops)
        return "\n".join(lines)
