"""Candidate-instruction selection.

The paper restricts SIMD characterization to floating-point add, subtract,
multiply, and divide — "the set of floating-point instructions that have
vector counterparts in SIMD architectures" (§3).  All other instructions
still participate in dependences; they are just not characterized.

The machinery is opcode-agnostic: pass ``include_integer=True`` to also
characterize integer arithmetic, as the paper notes is possible (§4).
"""

from __future__ import annotations

from typing import FrozenSet, List

from repro.ddg.graph import DDG
from repro.ir.instructions import FP_ARITH_OPCODES, INT_ARITH_OPCODES

FP_OPS: FrozenSet[int] = frozenset(int(op) for op in FP_ARITH_OPCODES)
INT_OPS: FrozenSet[int] = frozenset(int(op) for op in INT_ARITH_OPCODES)


def candidate_opcodes(include_integer: bool = False) -> FrozenSet[int]:
    return FP_OPS | INT_OPS if include_integer else FP_OPS


def candidate_sids(ddg: DDG, include_integer: bool = False) -> List[int]:
    """Static instruction ids with at least one candidate instance in the
    graph, in first-execution order.  Reads the DDG's precomputed
    sid -> opcode index instead of rescanning the node columns."""
    ops = candidate_opcodes(include_integer)
    return [sid for sid, opcode in ddg.sid_opcodes.items() if opcode in ops]


def candidate_nodes(ddg: DDG, include_integer: bool = False) -> List[int]:
    """All node indices whose opcode is a candidate operation."""
    ops = candidate_opcodes(include_integer)
    return [i for i, opcode in enumerate(ddg.opcodes) if opcode in ops]
