"""Baseline: Larus-style loop-level parallelism (paper §2.1).

Larus's model runs each loop iteration as a sequential instruction stream;
iterations execute concurrently, but an instruction that depends on
another iteration's instruction stalls until its producer has executed.
The measured loop-level parallelism is total work divided by the parallel
completion time.

As the paper's Fig. 2 shows, the unit of analysis being the *original*
loop body means dependence-preserving reorderings (e.g. distributing the
loop) are never explored, so vectorization potential is under-reported —
the motivation for Algorithm 1.

Input here is one loop's subtrace (markers included, so iteration
boundaries are known) plus the DDG built from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.ddg.graph import DDG
from repro.errors import AnalysisError
from repro.trace.trace import Trace


@dataclass
class LoopParallelismResult:
    """Larus-model measurements for one loop."""

    loop_id: int
    num_iterations: int
    total_ops: int
    completion_time: int
    finish_times: List[int] = field(default_factory=list)

    @property
    def parallelism(self) -> float:
        if self.completion_time == 0:
            return 0.0
        return self.total_ops / self.completion_time


def larus_loop_parallelism(
    subtrace: Trace, ddg: DDG, loop_id: int
) -> LoopParallelismResult:
    """Simulate Larus's concurrent-iterations model over one loop instance.

    Every non-marker record is one unit of work.  ``finish[i]`` is the
    time step node i completes: one after both the previous instruction of
    the same iteration and all of its DDG producers have completed.
    """
    iters = subtrace.iteration_numbers(loop_id)
    # Map trace records to DDG node indices (markers are not DDG nodes).
    node_iter: List[int] = []
    for rec, itn in zip(subtrace.records, iters):
        if not rec.is_marker:
            node_iter.append(itn)
    if len(node_iter) != len(ddg):
        raise AnalysisError(
            "subtrace and DDG disagree; build the DDG from this subtrace"
        )
    finish = [0] * len(ddg)
    last_in_iter: Dict[int, int] = {}
    indices = ddg.pred_indices
    offsets = ddg.pred_offsets
    total = 0
    for i in range(len(ddg)):
        itn = node_iter[i]
        t = last_in_iter.get(itn, 0)
        for j in range(offsets[i], offsets[i + 1]):
            fp = finish[indices[j]]
            if fp > t:
                t = fp
        finish[i] = t + 1
        last_in_iter[itn] = t + 1
        total += 1
    completion = max(finish) if finish else 0
    num_iterations = max((x for x in node_iter if x >= 0), default=-1) + 1
    return LoopParallelismResult(
        loop_id=loop_id,
        num_iterations=num_iterations,
        total_ops=total,
        completion_time=completion,
        finish_times=finish,
    )


def larus_partitions(
    subtrace: Trace, ddg: DDG, loop_id: int, target_sid: int
) -> Dict[int, List[int]]:
    """Group one instruction's instances by Larus finish time — the
    partitioning Fig. 2(b) illustrates."""
    result = larus_loop_parallelism(subtrace, ddg, loop_id)
    out: Dict[int, List[int]] = {}
    for i, sid in enumerate(ddg.sids):
        if sid == target_sid:
            out.setdefault(result.finish_times[i], []).append(i)
    return out
