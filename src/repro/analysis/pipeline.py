"""End-to-end drivers: source text in, Table-1-style reports out.

The flow mirrors the paper's methodology (§4.1):

1. compile and run the program, collecting a cycle profile;
2. select hot loops (>=10% of cycles, innermost-first selection rule);
3. for each hot loop, re-run with a loop-window sink to collect the
   subtrace of one representative dynamic instance;
4. build the DDG, run Algorithm 1 + the stride analyses, and attach the
   static-vectorizer Percent Packed for comparison.

Step 3 uses the fused columnar path: the windowed re-run streams records
straight into DDG-shaped columns (:class:`ColumnarLoopSink`), so no
per-record objects and no separate DDG-construction pass exist between
interpretation and analysis.

Because each hot loop's windowed re-run is independent, step 3 fans out
across a process pool when ``jobs > 1`` (each worker recompiles the
source — modules are cheap to rebuild and deterministic, so reports are
byte-identical to the serial path).  Pool failures fall back to serial,
with a ``vectra.pipeline`` warning so the degradation is visible.

Every driver takes an optional ``tel`` telemetry object (default: the
process-wide active telemetry, a no-op unless e.g. the CLI's
``--profile`` installed a live one) and records stage spans plus work
counters; pool workers collect their own telemetry and ship a snapshot
back with each report, which the parent merges — serial and parallel
runs report identical counter totals.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

from repro.analysis.metrics import loop_metrics
from repro.analysis.report import BenchmarkReport, LoopReport
from repro.ddg.build import build_ddg
from repro.errors import AnalysisError
from repro.frontend import parse_source
from repro.frontend.driver import compile_source
from repro.frontend.lower import lower
from repro.interp.interpreter import (
    DEFAULT_FUEL,
    Interpreter,
    run_and_trace,
)
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.obs import (
    EventLog,
    SamplingProfiler,
    Telemetry,
    get_logger,
    get_sampler,
    get_status_bus,
    get_telemetry,
    pool_heartbeat,
    use_sampler,
    use_telemetry,
)
from repro.profiler.costmodel import CostModel
from repro.profiler.hotloops import hot_loops, profile_loops
from repro.trace.columnar import ColumnarLoopSink
from repro.vectorizer.autovec import VectorizerConfig, analyze_program_loops
from repro.vectorizer.packed import percent_packed

_log = get_logger("pipeline")

__all__ = [
    "compile_source",
    "run_and_trace",
    "select_instance_subtrace",
    "analyze_loop",
    "analyze_module",
    "analyze_program",
    "analyze_kernel",
    "run_loop_analyses",
    "windowed_loop_ddg",
]


def select_instance_subtrace(trace, loop_id: int, loop_name: str,
                             instance: int):
    """The subtrace of the one loop instance a windowed trace recorded.

    A trace collected with ``instances={instance}`` contains exactly one
    span of ``loop_id`` — the requested instance, renumbered 0 by the
    window filter.  Select it explicitly: no recorded span means the
    requested instance never executed; more than one means the window
    filter misbehaved, and silently taking span 0 would analyze the wrong
    iteration.
    """
    spans = trace.loop_instances(loop_id)
    if not spans:
        raise AnalysisError(
            f"loop {loop_name!r} instance {instance} never executed"
        )
    if len(spans) != 1:
        raise AnalysisError(
            f"loop {loop_name!r}: expected one recorded span for instance "
            f"{instance}, found {len(spans)}"
        )
    return trace.subtrace(loop_id, 0)


def windowed_loop_ddg(module: Module, loop_id: int, loop_name: str,
                      entry: str, args: Sequence, instance: int,
                      fuel: int, tel=None, spill_dir: Optional[str] = None,
                      segment_rows: Optional[int] = None, jobs: int = 1,
                      compile_loops: bool = True,
                      compile_threshold: Optional[int] = None):
    """Fused trace→DDG for one loop instance: the windowed re-run streams
    into columnar storage and the DDG drops out without materializing a
    record list (the same validation as :func:`select_instance_subtrace`,
    off the sink's span counter).

    With ``spill_dir`` set the window streams through a
    :class:`~repro.trace.store.SegmentedLoopSink` instead — full segments
    spill to a per-loop subdirectory under ``segment_rows``-row budgets
    and the DDG is reassembled by streaming segment windows (``jobs > 1``
    shards the per-segment remap across a process pool).  The resulting
    DDG is bit-identical to the in-RAM path.
    """
    if tel is None:
        tel = get_telemetry()
    if spill_dir:
        from repro.trace.store import (
            DEFAULT_SEGMENT_ROWS,
            SegmentedLoopSink,
            spill_subdir,
        )

        sink = SegmentedLoopSink(
            loop_id, instances={instance},
            spill_dir=spill_subdir(spill_dir,
                                   f"{loop_name}-inst{instance}"),
            segment_rows=segment_rows or DEFAULT_SEGMENT_ROWS,
        )
    else:
        sink = ColumnarLoopSink(loop_id, instances={instance})
    with tel.span("loop.rerun", hist=True):
        interp = Interpreter(module, sink=sink, fuel=fuel,
                             compile_loops=compile_loops,
                             compile_threshold=compile_threshold)
        interp.run(entry, args)
    rows = 0
    if tel.enabled:
        stats = sink.stats()
        rows = stats["rows"]
        tel.count("interp.runs")
        tel.count("interp.instructions", interp.executed_instructions)
        tel.count("trace.records.kept", rows)
        tel.count("trace.records.filtered",
                  interp.executed_instructions - rows)
        tel.count("trace.markers", stats["markers"])
        tel.count("trace.backpatches", stats["backpatches"])
        tel.count("trace.spans_recorded", sink.spans_recorded)
    if sink.spans_recorded == 0:
        raise AnalysisError(
            f"loop {loop_name!r} instance {instance} never executed"
        )
    if sink.spans_recorded != 1:
        raise AnalysisError(
            f"loop {loop_name!r}: expected one recorded span for instance "
            f"{instance}, found {sink.spans_recorded}"
        )
    if spill_dir:
        store = sink.finish()
        with tel.span("ddg.build"):
            ddg = store.to_ddg(jobs=jobs, tel=tel)
    else:
        with tel.span("ddg.build"):
            ddg = sink.to_ddg()
    if tel.enabled:
        tel.count("ddg.nodes", len(ddg.sids))
        tel.count("ddg.edges", len(ddg.pred_indices))
        tel.count("ddg.marker_segments", stats["marker_segments"])
    return ddg, rows


def analyze_loop(
    module: Module,
    loop_name: str,
    entry: str = "main",
    args: Sequence = (),
    instance: int = 0,
    include_integer: bool = False,
    relax_reductions: bool = False,
    fuel: int = DEFAULT_FUEL,
    tel=None,
    spill_dir: Optional[str] = None,
    segment_rows: Optional[int] = None,
    jobs: int = 1,
    compile_loops: bool = True,
    compile_threshold: Optional[int] = None,
) -> LoopReport:
    """Dynamic analysis of one loop: trace one instance, build the DDG,
    compute the paper's metrics.  ``loop_name`` is a label or
    ``function:line``.

    ``spill_dir``/``segment_rows`` switch the windowed trace to the
    out-of-core segment store (bit-identical report); ``jobs`` then
    shards the segment reassembly across a process pool.
    ``compile_loops``/``compile_threshold`` control the trace-replay
    compiler (:mod:`repro.interp.compile`); output is bit-identical
    either way.
    """
    if tel is None:
        tel = get_telemetry()
    info = module.loop_by_name(loop_name)
    if info is None:
        known = ", ".join(li.name for li in module.loops.values())
        raise AnalysisError(
            f"no loop named {loop_name!r}; known loops: {known}"
        )
    # Make ``tel`` the process-active telemetry for the duration so that
    # deep instrumentation resolving the active object (e.g. the batched
    # Algorithm 1 scan) records into the same place whether this call is
    # serial with an explicit ``tel=`` or inside a pool worker.
    tel.instant("loop.analyze.start", {"loop": loop_name})
    get_status_bus().phase(f"loop.{loop_name}")
    # hist=True: one occurrence per analyzed loop, so --profile can
    # report p50/p95 per-loop analysis latency across the whole run.
    with use_telemetry(tel), tel.span("loop.analyze", hist=True):
        ddg, rows = windowed_loop_ddg(module, info.loop_id, loop_name,
                                      entry, args, instance, fuel, tel,
                                      spill_dir=spill_dir,
                                      segment_rows=segment_rows, jobs=jobs,
                                      compile_loops=compile_loops,
                                      compile_threshold=compile_threshold)
        report = loop_metrics(ddg, module, loop_name, include_integer,
                              relax_reductions, tel=tel)
    tel.count("pipeline.loops_analyzed")
    if tel.enabled:
        tel.section(f"loop.{loop_name}", {
            "loop": loop_name,
            "records_traced": rows,
            "ddg_nodes": len(ddg.sids),
            "candidate_ops": report.total_candidate_ops,
            "avg_concurrency": report.avg_concurrency,
            "partitions": sum(ir.num_partitions
                              for ir in report.instructions),
            "unit_subpartitions": sum(len(ir.unit_subpartition_sizes)
                                      for ir in report.instructions),
            "nonunit_subpartitions": sum(
                len(ir.nonunit_subpartition_sizes)
                for ir in report.instructions),
            "percent_vec_unit": report.percent_vec_unit,
            "avg_vec_size_unit": report.avg_vec_size_unit,
            "percent_vec_nonunit": report.percent_vec_nonunit,
            "avg_vec_size_nonunit": report.avg_vec_size_nonunit,
        })
    tel.instant("loop.analyze.finish", {"loop": loop_name})
    get_status_bus().count("loops")
    return report


def _loop_worker(payload):
    """Process-pool entry point: recompile the source and analyze one
    loop.  Compilation and interpretation are deterministic, so the
    result is identical to an in-process run on the parent's module.

    Returns ``(report, telemetry snapshot or None)``: when the parent
    profiles, the worker collects its own telemetry and ships the
    snapshot home so the parent's merged counters match a serial run.
    When the parent additionally keeps a timeline, the worker records
    its own :class:`EventLog` (stamped with the worker pid) and the
    events ride home inside the snapshot — a ``--jobs N`` trace renders
    as N worker tracks.

    When the parent samples (``sample_hz > 0``), the worker runs its own
    :class:`SamplingProfiler` and folds the resolved sample table into
    its telemetry before snapshotting, so profiler samples ride home the
    same way counters do and the merged flamegraph covers all workers."""
    (source, benchmark, loop_name, entry, args, instance,
     include_integer, relax_reductions, fuel, profiled, timeline,
     compile_loops, compile_threshold, sample_hz) = payload
    tel = None
    if profiled:
        tel = Telemetry(events=EventLog() if timeline else None)
    sampler = (SamplingProfiler(hz=sample_hz)
               if profiled and sample_hz else None)
    # Install the worker's telemetry as the process-active one too: with
    # a fork start method the child inherits the parent's (doomed) copy,
    # and any instrumentation that resolves the active telemetry would
    # otherwise record into it and be lost.
    with use_telemetry(tel), use_sampler(sampler):
        if sampler is not None:
            sampler.start()
        try:
            module = compile_source(source, benchmark or "module")
            report = analyze_loop(module, loop_name, entry, args, instance,
                                  include_integer, relax_reductions,
                                  fuel=fuel, tel=tel,
                                  compile_loops=compile_loops,
                                  compile_threshold=compile_threshold)
        finally:
            if sampler is not None:
                sampler.stop()
                tel.add_samples(sampler.folded_counts())
    return report, (tel.snapshot() if profiled else None)


def run_loop_analyses(
    source: str,
    benchmark: str,
    module: Module,
    loop_names: Sequence[str],
    entry: str = "main",
    args: Sequence = (),
    instance: int = 0,
    include_integer: bool = False,
    relax_reductions: bool = False,
    fuel: int = DEFAULT_FUEL,
    jobs: int = 1,
    tel=None,
    spill_dir: Optional[str] = None,
    segment_rows: Optional[int] = None,
    compile_loops: bool = True,
    compile_threshold: Optional[int] = None,
) -> List[LoopReport]:
    """Per-loop windowed analyses, optionally across a process pool.

    Results are returned in ``loop_names`` order regardless of ``jobs``,
    so parallel runs produce byte-identical reports.  ``jobs=None`` uses
    one worker per CPU; any failure to stand up the pool (restricted
    sandboxes, missing semaphores) falls back to the serial path with a
    ``vectra.pipeline`` warning.  Worker telemetry snapshots are merged
    into ``tel``, so counter totals match the serial path exactly.

    With ``spill_dir`` set, loops run serially (an out-of-core run is
    memory-bound, so loop-level fan-out would multiply the working set)
    and ``jobs`` instead shards each loop's spilled segments across the
    pool during DDG reassembly — see
    :meth:`repro.trace.store.SegmentStore.to_ddg`.
    """
    if tel is None:
        tel = get_telemetry()
    names = list(loop_names)
    if jobs is None or int(jobs) <= 0:
        jobs = multiprocessing.cpu_count()
    jobs = max(1, int(jobs)) if spill_dir else (
        max(1, min(int(jobs), len(names)))
    )
    tel.gauge("pipeline.jobs", jobs)
    bus = get_status_bus()
    bus.set_total("loops", len(names))

    def serial() -> List[LoopReport]:
        return [
            analyze_loop(module, name, entry, args, instance,
                         include_integer, relax_reductions, fuel=fuel,
                         tel=tel, spill_dir=spill_dir,
                         segment_rows=segment_rows,
                         jobs=jobs if spill_dir else 1,
                         compile_loops=compile_loops,
                         compile_threshold=compile_threshold)
            for name in names
        ]

    if spill_dir:
        if jobs > 1:
            _log.debug(
                "spill mode: analyzing %d loop(s) serially, sharding "
                "segments across %d worker(s)", len(names), jobs,
            )
        return serial()
    if jobs <= 1 or len(names) <= 1:
        return serial()
    sampler = get_sampler()
    sample_hz = sampler.hz if sampler.enabled else 0
    payloads = [
        (source, benchmark, name, entry, tuple(args), instance,
         include_integer, relax_reductions, fuel, tel.enabled,
         tel.events is not None, compile_loops, compile_threshold,
         sample_hz)
        for name in names
    ]
    initializer, initargs = pool_heartbeat(bus)
    try:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            ctx = multiprocessing.get_context()
        with ProcessPoolExecutor(max_workers=jobs, mp_context=ctx,
                                 initializer=initializer,
                                 initargs=initargs) as pool:
            # pool.map yields in submission order as results land, so
            # loop progress advances while later loops are still running.
            results = []
            for result in pool.map(_loop_worker, payloads):
                results.append(result)
                bus.count("loops")
    except (OSError, PermissionError, ImportError, RuntimeError) as exc:
        _log.warning(
            "process pool startup failed (%s: %s); analyzing %d loop(s) "
            "serially — re-run with --jobs 1 to silence this warning",
            type(exc).__name__, exc, len(names),
        )
        tel.count("pipeline.pool_fallbacks")
        tel.instant("pipeline.pool_fallback",
                    {"loops": len(names), "error": type(exc).__name__})
        # Leave the worker forensics where a post-mortem can find them:
        # after the fallback the pool (and its pids) are gone.
        from repro.obs.blackbox import blackbox_note

        blackbox_note("pool_failure", {
            "error": type(exc).__name__,
            "detail": str(exc),
            "loops": list(names),
            "workers": bus.worker_rows() if bus.enabled else [],
        })
        bus.retire_workers()
        return serial()
    bus.retire_workers()
    reports: List[LoopReport] = []
    for report, snapshot in results:
        reports.append(report)
        tel.merge(snapshot)
    return reports


def analyze_program(
    source: str,
    benchmark: str = "",
    entry: str = "main",
    args: Sequence = (),
    threshold: float = 0.10,
    instance: int = 0,
    cost_model: Optional[CostModel] = None,
    vec_config: Optional[VectorizerConfig] = None,
    include_integer: bool = False,
    relax_reductions: bool = False,
    fuel: int = DEFAULT_FUEL,
    jobs: int = 1,
    tel=None,
    spill_dir: Optional[str] = None,
    segment_rows: Optional[int] = None,
    compile_loops: bool = True,
    compile_threshold: Optional[int] = None,
) -> BenchmarkReport:
    """The full §4.1 methodology for one program.

    ``jobs > 1`` analyzes the hot loops concurrently across a process
    pool (``None`` = one worker per CPU); reports are byte-identical to
    ``jobs=1``.  ``spill_dir``/``segment_rows`` run the windowed traces
    out-of-core (bit-identical report; ``jobs`` shards segments instead
    of loops).
    """
    if tel is None:
        tel = get_telemetry()
    bus = get_status_bus()
    with tel.span("analysis.total"):
        bus.phase("frontend")
        with tel.span("frontend.parse_lower"):
            program, analyzer = parse_source(source)
            module = lower(analyzer, benchmark or "module")
            verify_module(module)
            if vec_config is None:
                vec_config = VectorizerConfig()
            decisions = analyze_program_loops(program, analyzer, vec_config)

        bus.phase("profile")
        with tel.span("profile.run"):
            interp = Interpreter(module, fuel=fuel,
                                 compile_loops=compile_loops,
                                 compile_threshold=compile_threshold)
            interp.run(entry, args)
            profiles = profile_loops(module, interp, cost_model)
            hot = hot_loops(module, interp, threshold, cost_model)
        if tel.enabled:
            tel.count("interp.runs")
            tel.count("interp.instructions", interp.executed_instructions)
            tel.count("pipeline.hot_loops", len(hot))

        loop_reports = run_loop_analyses(
            source, benchmark, module,
            [module.loops[prof.loop_id].name for prof in hot],
            entry, args, instance, include_integer, relax_reductions,
            fuel, jobs, tel=tel, spill_dir=spill_dir,
            segment_rows=segment_rows, compile_loops=compile_loops,
            compile_threshold=compile_threshold,
        )
        report = BenchmarkReport(benchmark=benchmark)
        for prof, loop_report in zip(hot, loop_reports):
            loop_report.benchmark = benchmark
            loop_report.percent_cycles = prof.percent_cycles
            loop_report.percent_packed = percent_packed(
                module, interp, decisions, prof.loop_id, vec_config,
                profiles
            )
            report.loops.append(loop_report)
        bus.phase("report")
        tel.record_memory()
    return report


def analyze_module(
    module: Module,
    entry: str = "main",
    args: Sequence = (),
    threshold: float = 0.10,
    instance: int = 0,
    include_integer: bool = False,
    relax_reductions: bool = False,
    fuel: int = DEFAULT_FUEL,
    tel=None,
    spill_dir: Optional[str] = None,
    segment_rows: Optional[int] = None,
    compile_loops: bool = True,
    compile_threshold: Optional[int] = None,
) -> BenchmarkReport:
    """Hot-loop analysis without a source AST (no Percent Packed column;
    serial — without source text there is nothing to ship to workers)."""
    if tel is None:
        tel = get_telemetry()
    bus = get_status_bus()
    with tel.span("analysis.total"):
        bus.phase("profile")
        with tel.span("profile.run"):
            interp = Interpreter(module, fuel=fuel,
                                 compile_loops=compile_loops,
                                 compile_threshold=compile_threshold)
            interp.run(entry, args)
            hot = hot_loops(module, interp, threshold)
        if tel.enabled:
            tel.count("interp.runs")
            tel.count("interp.instructions", interp.executed_instructions)
            tel.count("pipeline.hot_loops", len(hot))
        bus.set_total("loops", len(hot))
        report = BenchmarkReport(benchmark=module.name)
        for prof in hot:
            info = module.loops[prof.loop_id]
            loop_report = analyze_loop(
                module, info.name, entry, args, instance, include_integer,
                relax_reductions, fuel=fuel, tel=tel, spill_dir=spill_dir,
                segment_rows=segment_rows, compile_loops=compile_loops,
                compile_threshold=compile_threshold,
            )
            loop_report.benchmark = module.name
            loop_report.percent_cycles = prof.percent_cycles
            report.loops.append(loop_report)
        tel.record_memory()
    return report


def analyze_kernel(name: str, **params) -> BenchmarkReport:
    """Analyze a registered workload kernel by name (see
    :mod:`repro.workloads`)."""
    from repro.workloads.loader import get_workload

    workload = get_workload(name)
    return workload.analyze(**params)
