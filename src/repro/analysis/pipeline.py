"""End-to-end drivers: source text in, Table-1-style reports out.

The flow mirrors the paper's methodology (§4.1):

1. compile and run the program, collecting a cycle profile;
2. select hot loops (>=10% of cycles, innermost-first selection rule);
3. for each hot loop, re-run with a loop-window sink to collect the
   subtrace of one representative dynamic instance;
4. build the DDG, run Algorithm 1 + the stride analyses, and attach the
   static-vectorizer Percent Packed for comparison.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import loop_metrics
from repro.analysis.report import BenchmarkReport, LoopReport
from repro.ddg.build import build_ddg
from repro.errors import AnalysisError
from repro.frontend import parse_source
from repro.frontend.driver import compile_source
from repro.frontend.lower import lower
from repro.interp.interpreter import Interpreter, run_and_trace
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.profiler.costmodel import CostModel
from repro.profiler.hotloops import hot_loops, profile_loops
from repro.vectorizer.autovec import VectorizerConfig, analyze_program_loops
from repro.vectorizer.packed import percent_packed

__all__ = [
    "compile_source",
    "run_and_trace",
    "select_instance_subtrace",
    "analyze_loop",
    "analyze_module",
    "analyze_program",
    "analyze_kernel",
]


def select_instance_subtrace(trace, loop_id: int, loop_name: str,
                             instance: int):
    """The subtrace of the one loop instance a windowed trace recorded.

    A trace collected with ``instances={instance}`` contains exactly one
    span of ``loop_id`` — the requested instance, renumbered 0 by the
    window filter.  Select it explicitly: no recorded span means the
    requested instance never executed; more than one means the window
    filter misbehaved, and silently taking span 0 would analyze the wrong
    iteration.
    """
    spans = trace.loop_instances(loop_id)
    if not spans:
        raise AnalysisError(
            f"loop {loop_name!r} instance {instance} never executed"
        )
    if len(spans) != 1:
        raise AnalysisError(
            f"loop {loop_name!r}: expected one recorded span for instance "
            f"{instance}, found {len(spans)}"
        )
    return trace.subtrace(loop_id, 0)


def analyze_loop(
    module: Module,
    loop_name: str,
    entry: str = "main",
    args: Sequence = (),
    instance: int = 0,
    include_integer: bool = False,
    relax_reductions: bool = False,
) -> LoopReport:
    """Dynamic analysis of one loop: trace one instance, build the DDG,
    compute the paper's metrics.  ``loop_name`` is a label or
    ``function:line``."""
    info = module.loop_by_name(loop_name)
    if info is None:
        known = ", ".join(li.name for li in module.loops.values())
        raise AnalysisError(
            f"no loop named {loop_name!r}; known loops: {known}"
        )
    trace = run_and_trace(module, entry, args, loop=info.loop_id,
                          instances={instance})
    sub = select_instance_subtrace(trace, info.loop_id, loop_name, instance)
    ddg = build_ddg(sub)
    report = loop_metrics(ddg, module, loop_name, include_integer,
                          relax_reductions)
    return report


def analyze_program(
    source: str,
    benchmark: str = "",
    entry: str = "main",
    args: Sequence = (),
    threshold: float = 0.10,
    instance: int = 0,
    cost_model: Optional[CostModel] = None,
    vec_config: Optional[VectorizerConfig] = None,
    include_integer: bool = False,
    relax_reductions: bool = False,
) -> BenchmarkReport:
    """The full §4.1 methodology for one program."""
    program, analyzer = parse_source(source)
    module = lower(analyzer, benchmark or "module")
    verify_module(module)
    if vec_config is None:
        vec_config = VectorizerConfig()
    decisions = analyze_program_loops(program, analyzer, vec_config)

    interp = Interpreter(module)
    interp.run(entry, args)
    profiles = profile_loops(module, interp, cost_model)
    hot = hot_loops(module, interp, threshold, cost_model)

    report = BenchmarkReport(benchmark=benchmark)
    for prof in hot:
        info = module.loops[prof.loop_id]
        loop_report = analyze_loop(
            module, info.name, entry, args, instance, include_integer,
            relax_reductions,
        )
        loop_report.benchmark = benchmark
        loop_report.percent_cycles = prof.percent_cycles
        loop_report.percent_packed = percent_packed(
            module, interp, decisions, prof.loop_id, vec_config, profiles
        )
        report.loops.append(loop_report)
    return report


def analyze_module(
    module: Module,
    entry: str = "main",
    args: Sequence = (),
    threshold: float = 0.10,
    instance: int = 0,
    include_integer: bool = False,
    relax_reductions: bool = False,
) -> BenchmarkReport:
    """Hot-loop analysis without a source AST (no Percent Packed column)."""
    interp = Interpreter(module)
    interp.run(entry, args)
    hot = hot_loops(module, interp, threshold)
    report = BenchmarkReport(benchmark=module.name)
    for prof in hot:
        info = module.loops[prof.loop_id]
        loop_report = analyze_loop(
            module, info.name, entry, args, instance, include_integer,
            relax_reductions,
        )
        loop_report.benchmark = module.name
        loop_report.percent_cycles = prof.percent_cycles
        report.loops.append(loop_report)
    return report


def analyze_kernel(name: str, **params) -> BenchmarkReport:
    """Analyze a registered workload kernel by name (see
    :mod:`repro.workloads`)."""
    from repro.workloads.loader import get_workload

    workload = get_workload(name)
    return workload.analyze(**params)
