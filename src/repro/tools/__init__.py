"""Command-line tools."""
