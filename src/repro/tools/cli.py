"""``vectra`` command-line interface.

Subcommands:

- ``list`` — registered workloads (optionally by category).
- ``analyze <workload>`` — run the dynamic analysis on a workload's
  configured loops and print the Table-1-style rows.
- ``analyze-file <path> [--loop NAME]`` — analyze a mini-C source file.
- ``decisions <workload>`` — print the static vectorizer's per-loop
  verdicts with reasons.
- ``speedup <orig> <transformed>`` — simulated Table-4-style speedups on
  the three machine models.
- ``trace <workload> --loop NAME [-o OUT]`` — dump a loop subtrace to a
  binary trace file.
- ``explain <workload> [--loop NAME]`` — drill-down evidence report:
  dependence witnesses, stride-break provenance with layout culprits,
  and the static refusal reasons cross-examined against the trace.
- ``compare <base> <head>`` — diff two run reports (or a ledger's
  baseline vs latest; ``--baseline median:N`` gates against the
  per-metric median of the last N prior runs instead of the first
  entry), gate on ``--fail-on`` thresholds, optionally emit a
  machine-readable ``--json`` delta document.
- ``stats <ledger.jsonl>`` — ingest a ``--metrics-append`` ledger into
  sqlite and print per-metric trend rows (sparkline, median, latest)
  over the last N runs, with a median-absolute-deviation regression
  check that makes the exit code nonzero when the latest run is an
  outlier (``--json`` emits the ``vectra.stats/1`` document).
- ``watch <status.jsonl>`` — tail a ``--status-json`` file from another
  run into a live terminal dashboard (``--validate`` instead checks
  every frame against the ``vectra.live/1`` schema — the CI gate).

Every subcommand additionally accepts the observability options:
``--profile`` (stage/counter table on stderr after the run),
``--metrics-json PATH`` (versioned machine-readable run report; ``-``
writes to stdout), ``--metrics-append LEDGER.jsonl`` (accumulate run
reports across invocations), ``--trace-json PATH`` (Chrome trace-event
timeline for Perfetto/``chrome://tracing``; ``-`` writes to stdout),
``--log-level LEVEL`` (the ``vectra.*`` logger hierarchy — surfaces
e.g. pool-to-serial fallbacks and fuel exhaustion as warnings), and the
live-status options ``--status-json PATH`` (stream ``vectra.live/1``
status frames, one JSON line per ``--status-interval``; ``-`` for
stdout, ``fd:N`` for an inherited descriptor), ``--stall-timeout S``
(flag pool workers silent past S seconds), and ``--progress``
(single-line live progress on stderr).

Deep profiling rides the same options: ``--sample-hz N`` starts the
timer-thread sampling profiler (pool workers sample themselves and ship
their tables home), and ``--flame PATH`` exports the samples — with
workload-IR (loop, sid) leaf frames — as a flamegraph SVG/HTML or
collapsed-stack folded text, picked by suffix (``-`` streams folded
text to stdout).  ``--flame`` alone implies sampling at the default
rate.

At most one of ``--metrics-json`` / ``--trace-json`` /
``--status-json`` / ``--flame`` / ``compare``/``stats`` ``--json`` may
target ``-``: two JSON documents interleaved on stdout are corrupt, so
the CLI refuses the combination up front, naming the colliding flags.

``analyze`` and ``analyze-file`` additionally accept ``--spill-dir DIR``
/ ``--segment-rows N``: the windowed traces stream through the
out-of-core segment store (bit-identical reports, bounded peak memory;
``--jobs`` then shards segments instead of loops).
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import VectraError


def _cmd_list(args) -> int:
    from repro.workloads import list_workloads

    for w in list_workloads(args.category):
        print(f"{w.name:28} [{w.category:9}] {w.description}")
        if args.verbose and w.models:
            print(f"{'':28} models: {w.models}")
    return 0


def _cmd_analyze(args) -> int:
    from repro.analysis.report import LoopReport
    from repro.workloads import get_workload

    workload = get_workload(args.workload)
    params = _parse_params(args.param)
    report = workload.analyze(
        include_integer=args.integer,
        relax_reductions=args.relax_reductions,
        **_run_opts(args),
        **params,
    )
    print(LoopReport.header())
    for loop in report.loops:
        print(loop.row())
    if args.verbose:
        for loop in report.loops:
            print(f"\n-- {loop.loop_name}: per-instruction detail")
            for instr in loop.instructions:
                print(
                    f"   sid {instr.sid:5} {instr.mnemonic:5} line "
                    f"{instr.line:4}  inst {instr.num_instances:7} "
                    f"parts {instr.num_partitions:6} "
                    f"avg {instr.avg_partition_size:9.1f} "
                    f"unit {instr.unit_vec_ops:7} "
                    f"nonunit {instr.nonunit_vec_ops:7}"
                )
    return 0


def _cmd_analyze_file(args) -> int:
    from repro.analysis.pipeline import analyze_program
    from repro.workloads.base import analyze_workload

    with open(args.path) as fh:
        source = fh.read()
    if args.loop:
        report = analyze_workload(source, args.path, [args.loop],
                                  **_run_opts(args))
    else:
        report = analyze_program(source, benchmark=args.path,
                                 threshold=args.threshold,
                                 **_run_opts(args))
    print(report.table())
    return 0


def _cmd_decisions(args) -> int:
    from repro.frontend import parse_source
    from repro.vectorizer import analyze_program_loops
    from repro.workloads import get_workload

    workload = get_workload(args.workload)
    program, analyzer = parse_source(workload.source())
    for decision in analyze_program_loops(program, analyzer):
        verdict = "VECTORIZED" if decision.vectorized else "refused"
        print(f"{decision.name:24} {verdict}")
        for reason in decision.reasons:
            print(f"{'':24}   - {reason}")
    return 0


def _cmd_speedup(args) -> int:
    from repro.simd import MACHINES
    from repro.simd.simulate import simulate_speedup
    from repro.workloads import get_workload

    orig = get_workload(args.original).source()
    new = get_workload(args.transformed).source()
    for name, machine in MACHINES.items():
        s = simulate_speedup(orig, new, machine)
        print(f"{machine.name:32} speedup {s:5.2f}x")
    return 0


def _cmd_vlength(args) -> int:
    from repro.analysis.vlength import vector_length_profile
    from repro.ddg import build_ddg
    from repro.interp import run_and_trace
    from repro.workloads import get_workload

    workload = get_workload(args.workload)
    module = workload.compile()
    loops = [args.loop] if args.loop else workload.analyze_loops
    for loop_name in loops:
        info = module.loop_by_name(loop_name)
        if info is None:
            raise VectraError(f"no loop named {loop_name!r}")
        trace = run_and_trace(module, workload.entry, loop=info.loop_id,
                              instances={0}, **_run_opts(args))
        ddg = build_ddg(trace.subtrace(info.loop_id, 0))
        profile = vector_length_profile(ddg, module, loop_name)
        print(profile.table())
        print()
    return 0


def _cmd_opportunities(args) -> int:
    from repro.analysis.opportunities import classify_program
    from repro.frontend import parse_source
    from repro.frontend.lower import lower
    from repro.interp import Interpreter
    from repro.ir.verifier import verify_module
    from repro.vectorizer import analyze_program_loops
    from repro.workloads import get_workload

    workload = get_workload(args.workload)
    source = workload.source()
    program, analyzer = parse_source(source)
    module = lower(analyzer, workload.name)
    verify_module(module)
    decisions = analyze_program_loops(program, analyzer)
    interp = Interpreter(module, **_run_opts(args))
    interp.run(workload.entry)
    # analyze() recompiles internally but fills percent_packed per loop.
    reports = workload.analyze(**_run_opts(args)).loops
    for opp in classify_program(reports, decisions, module,
                                interp.dyn_parent):
        print(opp.row())
        if args.verbose:
            for reason in opp.reasons:
                print(f"{'':22} - {reason}")
    return 0


def _cmd_trace(args) -> int:
    from repro.interp import run_and_trace
    from repro.trace.serialize import save_trace
    from repro.workloads import get_workload

    workload = get_workload(args.workload)
    module = workload.compile()
    info = module.loop_by_name(args.loop)
    if info is None:
        raise VectraError(f"no loop named {args.loop!r}")
    trace = run_and_trace(module, workload.entry, loop=info.loop_id,
                          instances={args.instance}, **_run_opts(args))
    save_trace(trace, args.output)
    print(f"wrote {len(trace)} records to {args.output}")
    return 0


def _cmd_analyze_trace(args) -> int:
    """Offline analysis of a previously dumped trace (the paper's
    collect-then-analyze workflow)."""
    from repro.analysis.metrics import loop_metrics
    from repro.analysis.report import LoopReport
    from repro.ddg import build_ddg
    from repro.frontend.driver import compile_source
    from repro.trace.serialize import load_trace

    with open(args.source) as fh:
        module = compile_source(fh.read(), args.source)
    trace = load_trace(args.trace, module)
    ddg = build_ddg(trace)
    report = loop_metrics(ddg, module, args.trace,
                          include_integer=args.integer)
    print(LoopReport.header())
    print(report.row())
    return 0


def _cmd_baselines(args) -> int:
    """Compare Algorithm 1 against the Kumar and Larus baselines on one
    loop — the paper's §2 argument, on demand."""
    from repro.analysis.kumar import kumar_profile
    from repro.analysis.larus import larus_loop_parallelism
    from repro.analysis.timestamps import (
        average_partition_size,
        parallel_partitions,
    )
    from repro.analysis.candidates import candidate_sids
    from repro.ddg import build_ddg
    from repro.interp import run_and_trace
    from repro.workloads import get_workload

    workload = get_workload(args.workload)
    module = workload.compile()
    loop_name = args.loop or workload.analyze_loops[0]
    info = module.loop_by_name(loop_name)
    if info is None:
        raise VectraError(f"no loop named {loop_name!r}")
    trace = run_and_trace(module, workload.entry, loop=info.loop_id,
                          instances={0}, **_run_opts(args))
    sub = trace.subtrace(info.loop_id, 0)
    ddg = build_ddg(sub)

    profile = kumar_profile(ddg, weights="candidates")
    larus = larus_loop_parallelism(sub, ddg, info.loop_id)
    print(f"loop {loop_name}: {len(ddg)} DDG nodes")
    print(f"  Kumar critical path (FP ops):   {profile.critical_path}")
    print(f"  Kumar average parallelism:      "
          f"{profile.average_parallelism:.2f}")
    print(f"  Larus loop-level parallelism:   {larus.parallelism:.2f}")
    for sid in candidate_sids(ddg):
        parts = parallel_partitions(ddg, sid)
        instr = module.instruction(sid)
        print(f"  Algorithm 1 [{instr.mnemonic} line {instr.line}]: "
              f"{len(parts)} partitions, avg size "
              f"{average_partition_size(parts):.1f}")
    return 0


def _cmd_dot(args) -> int:
    from repro.analysis.timestamps import compute_timestamps
    from repro.ddg import build_ddg
    from repro.ddg.dot import ddg_to_dot
    from repro.interp import run_and_trace
    from repro.workloads import get_workload

    workload = get_workload(args.workload)
    module = workload.compile(**_parse_params(args.param))
    info = module.loop_by_name(args.loop)
    if info is None:
        raise VectraError(f"no loop named {args.loop!r}")
    trace = run_and_trace(module, workload.entry, loop=info.loop_id,
                          instances={0}, **_run_opts(args))
    ddg = build_ddg(trace.subtrace(info.loop_id, 0))
    highlight = None
    timestamps = None
    if args.highlight_line is not None:
        from repro.analysis.candidates import candidate_sids

        for sid in candidate_sids(ddg):
            if module.instruction(sid).line == args.highlight_line:
                highlight = sid
                timestamps = compute_timestamps(ddg, sid)
                break
        if highlight is None:
            raise VectraError(
                f"no candidate instruction at line {args.highlight_line}"
            )
    dot = ddg_to_dot(ddg, module, highlight, timestamps)
    with open(args.output, "w") as fh:
        fh.write(dot)
    print(f"wrote {len(ddg)}-node graph to {args.output}")
    return 0


def _cmd_explain(args) -> int:
    from repro.analysis.opportunities import subtree_reasons
    from repro.explain import explain_loop, render_explain
    from repro.frontend import parse_source
    from repro.frontend.lower import lower
    from repro.ir.verifier import verify_module
    from repro.vectorizer import analyze_program_loops
    from repro.workloads import get_workload

    workload = get_workload(args.workload)
    source = workload.source(**_parse_params(args.param))
    program, analyzer = parse_source(source)
    module = lower(analyzer, workload.name)
    verify_module(module)
    decisions = analyze_program_loops(program, analyzer)
    loops = [args.loop] if args.loop else workload.analyze_loops
    if not loops:
        raise VectraError(
            f"workload {workload.name!r} declares no analysis loops; "
            f"pass --loop NAME"
        )
    for idx, loop_name in enumerate(loops):
        reasons = subtree_reasons(module, decisions, loop_name)
        report = explain_loop(module, loop_name, reasons,
                              entry=workload.entry,
                              instance=args.instance,
                              include_integer=args.integer,
                              **_run_opts(args))
        if idx:
            print()
        print(render_explain(report))
    return 0


def _cmd_compare(args) -> int:
    import json

    from repro.obs.compare import (
        compare_json_doc,
        diff_reports,
        evaluate_thresholds,
        format_diff_table,
        load_report,
        parse_fail_on,
    )
    from repro.obs.history import read_ledger, select_baseline

    # Parse the gate specs before touching any report: a malformed
    # --fail-on is CI misconfiguration and must fail naming the exact
    # bad KIND:NAME:LIMIT item even when the report paths are also bad.
    thresholds = [parse_fail_on(spec) for spec in (args.fail_on or [])]
    if args.ledger:
        if args.base or args.head:
            raise VectraError(
                "compare takes either BASE HEAD report paths or --ledger, "
                "not both"
            )
        reports = read_ledger(args.ledger)
        base = select_baseline(reports, args.baseline)
        head = reports[-1]
    else:
        if args.baseline != "first":
            raise VectraError(
                "--baseline requires --ledger (a single BASE report has "
                "no run history to take a median over)"
            )
        if not args.base or not args.head:
            raise VectraError(
                "compare needs BASE and HEAD report paths "
                "(or --ledger LEDGER.jsonl)"
            )
        base = load_report(args.base)
        head = load_report(args.head)
    deltas = diff_reports(base, head)
    violations = evaluate_thresholds(deltas, thresholds)
    # With --json - the delta document owns stdout; the human table and
    # the OK verdict move aside so the output stays machine-parseable.
    json_to_stdout = args.json == "-"
    if not json_to_stdout:
        print(format_diff_table(deltas, changed_only=args.changed_only))
    if args.json:
        payload = json.dumps(compare_json_doc(deltas, thresholds),
                             indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            try:
                with open(args.json, "w") as fh:
                    fh.write(payload + "\n")
            except OSError as exc:
                raise VectraError(
                    f"cannot write compare JSON to {args.json!r}: {exc}"
                ) from exc
    if violations:
        for line in violations:
            print(f"FAIL {line}", file=sys.stderr)
        print(f"verdict: FAIL ({len(violations)} threshold(s) exceeded)",
              file=sys.stderr)
        return 1
    if args.fail_on:
        print(f"verdict: OK ({len(args.fail_on)} threshold(s) satisfied)",
              file=sys.stderr if json_to_stdout else sys.stdout)
    return 0


def _cmd_stats(args) -> int:
    """Trend table + MAD regression check over a metrics ledger."""
    import json

    from repro.obs.history import read_ledger
    from repro.obs.statsdb import (
        format_trend_table,
        ingest_reports,
        metric_trends,
        open_db,
        stats_json_doc,
    )

    reports = read_ledger(args.ledger)
    conn = open_db(args.db)
    try:
        ingest_reports(conn, reports, source=args.ledger)
        trends, runs = metric_trends(
            conn, args.ledger, last_n=args.last,
            patterns=args.metric or (), threshold=args.mad_threshold)
    finally:
        conn.close()
    json_to_stdout = args.json == "-"
    if not json_to_stdout:
        print(format_trend_table(trends, runs,
                                 changed_only=args.changed_only))
    if args.json:
        payload = json.dumps(stats_json_doc(trends, runs, args.ledger),
                             indent=2, sort_keys=True)
        if json_to_stdout:
            print(payload)
        else:
            try:
                with open(args.json, "w") as fh:
                    fh.write(payload + "\n")
            except OSError as exc:
                raise VectraError(
                    f"cannot write stats JSON to {args.json!r}: {exc}"
                ) from exc
    regressions = [t.regression for t in trends if t.regression]
    if regressions:
        for line in regressions:
            print(f"FAIL {line}", file=sys.stderr)
        print(f"verdict: FAIL ({len(regressions)} metric(s) regressed "
              f"by the MAD check)", file=sys.stderr)
        return 0 if args.no_fail else 1
    return 0


def _cmd_autopsy(args) -> int:
    """Render a ``--blackbox`` crash bundle as a human post-mortem."""
    from repro.obs.blackbox import load_blackbox, render_autopsy

    try:
        print(render_autopsy(load_blackbox(args.path)))
    except BrokenPipeError:  # autopsy | head is fine
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def _cmd_watch(args) -> int:
    """Tail a ``--status-json`` file into a terminal dashboard (or, with
    ``--validate``, check every frame against the live schema).  Exits
    with the watched run's own exit code, read from its final ``done``
    frame — so ``vectra watch`` in a script fails when the run did."""
    import time

    from repro.obs.live import (
        LIVE_SCHEMA,
        read_frames,
        render_dashboard,
        validate_frames,
    )

    if args.validate:
        frames = read_frames(args.path)
        validate_frames(frames, source=args.path)
        print(f"{args.path}: {len(frames)} valid {LIVE_SCHEMA} frame(s)")
        return 0
    last_seq = None
    clear = sys.stdout.isatty() and not args.once
    try:
        while True:
            frames = read_frames(args.path)
            if frames:
                frame = frames[-1]
                if frame.get("seq") != last_seq:
                    last_seq = frame.get("seq")
                    if clear:
                        print("\x1b[2J\x1b[H", end="")
                    print(render_dashboard(frame))
                if frame.get("event") == "done":
                    # Propagate the watched run's outcome: the done
                    # frame carries its exit code.
                    return int(frame.get("exit_code", 0) or 0)
            elif args.once:
                print(f"{args.path}: no complete status frames yet")
            if args.once:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 130
    except BrokenPipeError:  # watch | head is fine
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _check_stdout_collisions(args) -> None:
    """Refuse flag combinations that would interleave multiple JSON
    documents on stdout."""
    owners = [
        flag
        for flag, attr in (("--metrics-json", "metrics_json"),
                           ("--trace-json", "trace_json"),
                           ("--status-json", "status_json"),
                           ("--flame", "flame"),
                           ("--json", "json"))
        if getattr(args, attr, None) == "-"
    ]
    if len(owners) > 1:
        raise VectraError(
            f"{' and '.join(owners)} would interleave multiple JSON "
            f"documents on stdout; pass '-' to at most one of them and "
            f"give the rest file paths"
        )


def _run_opts(args):
    """Interpreter/analysis options shared by several subcommands,
    forwarded only when set so library defaults stay authoritative."""
    opts = {}
    if getattr(args, "fuel", None) is not None:
        opts["fuel"] = args.fuel
    if getattr(args, "jobs", None) is not None:
        opts["jobs"] = args.jobs
    spill_dir = getattr(args, "spill_dir", None)
    segment_rows = getattr(args, "segment_rows", None)
    if segment_rows is not None and not spill_dir:
        raise VectraError("--segment-rows requires --spill-dir")
    if spill_dir:
        opts["spill_dir"] = spill_dir
        if segment_rows is not None:
            opts["segment_rows"] = segment_rows
    if getattr(args, "no_compile", False):
        opts["compile_loops"] = False
    if getattr(args, "compile_threshold", None) is not None:
        opts["compile_threshold"] = args.compile_threshold
    return opts


def _add_fuel_option(p):
    p.add_argument("--fuel", type=int, default=None, metavar="N",
                   help="interpreter instruction budget (default: "
                        "500,000,000); runs that exhaust it fail with a "
                        "clear error instead of looping forever")


def _add_compile_options(p):
    g = p.add_argument_group("trace-replay compilation")
    g.add_argument("--no-compile", action="store_true",
                   help="disable the trace-replay loop compiler and run "
                        "every instruction through the step interpreter "
                        "(output is bit-identical either way; mainly for "
                        "debugging and A/B timing)")
    g.add_argument("--compile-threshold", type=int, default=None,
                   metavar="N",
                   help="iterations before a loop is considered hot and "
                        "compiled to a batch kernel (default: 16, shared "
                        "with the profiler's hot-loop counter)")


def _add_jobs_option(p):
    p.add_argument("-j", "--jobs", type=int, default=None, metavar="N",
                   help="analyze hot loops across N worker processes "
                        "(0 or negative: one per CPU); results are "
                        "byte-identical to --jobs 1")


def _add_spill_options(p):
    g = p.add_argument_group("out-of-core trace store")
    g.add_argument("--spill-dir", metavar="DIR", default=None,
                   help="spill windowed trace columns to segment files "
                        "under DIR instead of holding them in RAM; "
                        "reports are bit-identical, peak memory is "
                        "bounded by the segment budget (with --jobs, "
                        "segments shard across the worker pool)")
    g.add_argument("--segment-rows", type=int, default=None, metavar="N",
                   help="rows per spilled segment (default: 1048576); "
                        "cuts align to loop-iteration markers; requires "
                        "--spill-dir")


def _parse_params(items):
    params = {}
    for item in items or []:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise VectraError(
                f"bad parameter {item!r}: expected NAME=INT, e.g. -p n=64"
            )
        try:
            params[key] = int(value)
        except ValueError:
            raise VectraError(
                f"bad parameter {item!r}: value {value!r} is not an integer"
            ) from None
    return params


def _obs_options() -> argparse.ArgumentParser:
    """Shared observability options, attached to every subcommand."""
    from repro.obs import DEFAULT_SAMPLE_HZ, REPORT_SCHEMA
    from repro.obs.live import (
        DEFAULT_STALL_TIMEOUT,
        DEFAULT_STATUS_INTERVAL,
        LIVE_SCHEMA,
    )

    common = argparse.ArgumentParser(add_help=False)
    g = common.add_argument_group("observability")
    g.add_argument("--profile", action="store_true",
                   help="print a stage/counter telemetry table to stderr "
                        "after the command")
    g.add_argument("--metrics-json", metavar="PATH", default=None,
                   help=f"write the machine-readable run report "
                        f"({REPORT_SCHEMA} JSON) to PATH ('-' for stdout)")
    g.add_argument("--metrics-append", metavar="LEDGER", default=None,
                   help="append the run report as one JSON line to "
                        "LEDGER (a .jsonl history usable with "
                        "'vectra compare --ledger')")
    g.add_argument("--trace-json", metavar="PATH", default=None,
                   help="write a Chrome trace-event timeline to PATH "
                        "('-' for stdout); open in Perfetto or "
                        "chrome://tracing")
    g.add_argument("--log-level", metavar="LEVEL", default=None,
                   help="enable vectra.* logging at LEVEL "
                        "(debug|info|warning|error)")
    prof = common.add_argument_group("sampling profiler")
    prof.add_argument("--sample-hz", type=float, default=None, metavar="N",
                      help="sample the run N times per second from a "
                           "timer thread, attributing wall time to "
                           "Python frames and workload IR (loop, sid); "
                           "pool workers sample themselves and ship "
                           "tables home")
    prof.add_argument("--flame", metavar="PATH", default=None,
                      help="write the profiler samples to PATH: a "
                           "self-contained flamegraph (.svg/.html) or "
                           "collapsed-stack folded text (any other "
                           "suffix; '-' for stdout); implies sampling "
                           f"at {DEFAULT_SAMPLE_HZ} Hz when --sample-hz "
                           f"is not given")
    live = common.add_argument_group("live status")
    live.add_argument("--status-json", metavar="PATH", default=None,
                      help=f"stream {LIVE_SCHEMA} status frames (one "
                           f"JSON line per interval: progress, rates/"
                           f"ETA, resource gauges, worker heartbeats) "
                           f"to PATH ('-' for stdout, 'fd:N' for an "
                           f"inherited descriptor); tail with "
                           f"'vectra watch PATH'")
    live.add_argument("--status-interval", type=float,
                      default=DEFAULT_STATUS_INTERVAL, metavar="S",
                      help="seconds between status frames (default: "
                           "%(default)s)")
    live.add_argument("--stall-timeout", type=float,
                      default=DEFAULT_STALL_TIMEOUT, metavar="S",
                      help="seconds of heartbeat silence before a pool "
                           "worker is reported stalled (default: "
                           "%(default)s; worker death is reported "
                           "separately)")
    live.add_argument("--progress", action="store_true",
                      help="single-line live progress updates on stderr")
    mon = common.add_argument_group("monitor / flight recorder")
    mon.add_argument("--monitor-port", type=int, default=None, metavar="N",
                     help="serve a loopback HTTP observability plane on "
                          "port N while the command runs: GET /metrics "
                          "(OpenMetrics text for Prometheus scrapes), "
                          "/status (latest vectra.live/1 frame as JSON), "
                          "/healthz (503 once the run stalls), /flame "
                          "(folded profiler samples, with --sample-hz); "
                          "0 binds an ephemeral port, printed to stderr "
                          "and recorded in status frames")
    mon.add_argument("--blackbox", metavar="PATH", default=None,
                     help="crash flight recorder: on an unhandled "
                          "exception, SIGTERM or Ctrl-C, atomically "
                          "write a vectra.blackbox/1 post-mortem bundle "
                          "(reason, active loop, worker heartbeats, "
                          "event-ring tail, last status frames, final "
                          "telemetry) to PATH; render it with "
                          "'vectra autopsy PATH'")
    return common


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vectra",
        description="Dynamic trace-based analysis of vectorization "
                    "potential (PLDI 2012 reproduction).",
    )
    obs = _obs_options()
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list registered workloads",
                       parents=[obs])
    p.add_argument("--category", choices=["spec", "utdsp", "kernel",
                                          "casestudy"], default=None)
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_list)

    p = sub.add_parser("analyze", help="analyze a workload's loops",
                       parents=[obs])
    p.add_argument("workload")
    p.add_argument("-p", "--param", action="append",
                   help="override a workload parameter, e.g. -p n=64")
    p.add_argument("--integer", action="store_true",
                   help="also characterize integer arithmetic")
    p.add_argument("--relax-reductions", action="store_true",
                   help="ignore reduction dependences (the paper's "
                        "future-work extension)")
    p.add_argument("-v", "--verbose", action="store_true")
    _add_fuel_option(p)
    _add_compile_options(p)
    _add_jobs_option(p)
    _add_spill_options(p)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("vlength",
                       help="vector-length / GPU-suitability profile",
                       parents=[obs])
    p.add_argument("workload")
    p.add_argument("--loop", default=None)
    _add_fuel_option(p)
    _add_compile_options(p)
    p.set_defaults(func=_cmd_vlength)

    p = sub.add_parser("opportunities",
                       help="classify missed vectorization opportunities",
                       parents=[obs])
    p.add_argument("workload")
    p.add_argument("-v", "--verbose", action="store_true")
    _add_fuel_option(p)
    _add_compile_options(p)
    p.set_defaults(func=_cmd_opportunities)

    p = sub.add_parser("analyze-file", help="analyze a mini-C source file",
                       parents=[obs])
    p.add_argument("path")
    p.add_argument("--loop", default=None)
    p.add_argument("--threshold", type=float, default=0.10)
    _add_fuel_option(p)
    _add_compile_options(p)
    _add_jobs_option(p)
    _add_spill_options(p)
    p.set_defaults(func=_cmd_analyze_file)

    p = sub.add_parser("decisions",
                       help="static vectorizer verdicts for a workload",
                       parents=[obs])
    p.add_argument("workload")
    p.set_defaults(func=_cmd_decisions)

    p = sub.add_parser("speedup",
                       help="simulated speedup of a transformed workload",
                       parents=[obs])
    p.add_argument("original")
    p.add_argument("transformed")
    p.set_defaults(func=_cmd_speedup)

    p = sub.add_parser("trace", help="dump a loop subtrace to a file",
                       parents=[obs])
    p.add_argument("workload")
    p.add_argument("--loop", required=True)
    p.add_argument("--instance", type=int, default=0)
    p.add_argument("-o", "--output", default="loop.vtrc")
    _add_fuel_option(p)
    _add_compile_options(p)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("analyze-trace",
                       help="offline analysis of a dumped trace file",
                       parents=[obs])
    p.add_argument("trace")
    p.add_argument("--source", required=True,
                   help="the mini-C source the trace was collected from")
    p.add_argument("--integer", action="store_true")
    p.set_defaults(func=_cmd_analyze_trace)

    p = sub.add_parser("baselines",
                       help="Kumar/Larus vs Algorithm 1 on one loop",
                       parents=[obs])
    p.add_argument("workload")
    p.add_argument("--loop", default=None)
    _add_fuel_option(p)
    _add_compile_options(p)
    p.set_defaults(func=_cmd_baselines)

    p = sub.add_parser("explain",
                       help="drill-down report: dependence witnesses, "
                            "stride-break provenance, refusal "
                            "cross-examination",
                       parents=[obs])
    p.add_argument("workload")
    p.add_argument("--loop", default=None,
                   help="explain one loop (default: the workload's "
                        "configured analysis loops)")
    p.add_argument("--instance", type=int, default=0,
                   help="which dynamic loop instance to trace")
    p.add_argument("--integer", action="store_true",
                   help="also treat integer arithmetic as candidates")
    p.add_argument("-p", "--param", action="append",
                   help="override a workload parameter, e.g. -p n=64")
    _add_fuel_option(p)
    _add_compile_options(p)
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser("compare",
                       help="diff two run reports; perf-regression gate",
                       parents=[obs])
    p.add_argument("base", nargs="?", default=None,
                   help="baseline run report (a --metrics-json file)")
    p.add_argument("head", nargs="?", default=None,
                   help="run report under test")
    p.add_argument("--ledger", metavar="PATH", default=None,
                   help="compare the baseline (first) vs latest (last) "
                        "entries of a --metrics-append ledger instead of "
                        "two report files")
    p.add_argument("--baseline", metavar="SPEC", default="first",
                   help="with --ledger: which baseline the latest run is "
                        "gated against — 'first' (the ledger's first "
                        "entry, the default) or 'median:N' (per-metric "
                        "median of the last N runs before the latest, "
                        "robust to one noisy baseline run)")
    p.add_argument("--fail-on", action="append", metavar="SPEC",
                   help="threshold KIND:NAME:LIMIT (e.g. "
                        "\"span:analysis.total:+10%%\" or "
                        "\"counter:interp.instructions:+0%%\"); "
                        "repeatable; any exceeded threshold makes the "
                        "exit code nonzero")
    p.add_argument("--changed-only", action="store_true",
                   help="only print rows whose value moved")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="also write a machine-readable delta document "
                        "(vectra.compare/1 JSON) to PATH ('-' for "
                        "stdout), with per-metric violated flags")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("stats",
                       help="trend table + MAD regression check over a "
                            "--metrics-append ledger",
                       parents=[obs])
    p.add_argument("ledger",
                   help="the --metrics-append JSONL ledger to analyze")
    p.add_argument("--last", type=int, default=None, metavar="N",
                   help="only consider the last N runs (default: all)")
    p.add_argument("--metric", action="append", metavar="GLOB",
                   help="fnmatch filter on KIND:NAME (e.g. 'counter:*' "
                        "or 'hist:loop.analyze.p95'); repeatable, "
                        "default: every metric")
    p.add_argument("--mad-threshold", type=float, default=3.5,
                   metavar="X",
                   help="modified-z-score above which the latest run "
                        "counts as a regression (default: %(default)s)")
    p.add_argument("--db", metavar="PATH", default=None,
                   help="persist the sqlite stats database at PATH "
                        "(default: in-memory for this query only)")
    p.add_argument("--changed-only", action="store_true",
                   help="only print metrics whose value ever moved")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="also write the machine-readable trend document "
                        "(vectra.stats/1 JSON) to PATH ('-' for stdout)")
    p.add_argument("--no-fail", action="store_true",
                   help="report regressions but keep the exit code 0")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("watch",
                       help="tail a --status-json file into a live "
                            "terminal dashboard",
                       parents=[obs])
    p.add_argument("path", help="status-frame JSONL file another run is "
                                "writing via --status-json")
    p.add_argument("--interval", type=float, default=1.0, metavar="S",
                   help="seconds between re-reads (default: %(default)s)")
    p.add_argument("--once", action="store_true",
                   help="render the latest frame once and exit")
    p.add_argument("--validate", action="store_true",
                   help="validate every frame against the vectra.live/1 "
                        "schema (monotonic progress, increasing seq, "
                        "final done frame) and exit nonzero on any "
                        "violation — the CI gate")
    p.set_defaults(func=_cmd_watch)

    p = sub.add_parser("autopsy",
                       help="render a --blackbox crash bundle as a "
                            "human-readable post-mortem",
                       parents=[obs])
    p.add_argument("path", help="a vectra.blackbox/1 bundle written by "
                                "a crashed --blackbox run")
    p.set_defaults(func=_cmd_autopsy)

    p = sub.add_parser("dot", help="Graphviz export of a loop's DDG",
                       parents=[obs])
    p.add_argument("workload")
    p.add_argument("--loop", required=True)
    _add_fuel_option(p)
    _add_compile_options(p)
    p.add_argument("--highlight-line", type=int, default=None,
                   help="color instances of the candidate instruction at "
                        "this source line by Algorithm-1 partition")
    p.add_argument("-p", "--param", action="append")
    p.add_argument("-o", "--output", default="ddg.dot")
    p.set_defaults(func=_cmd_dot)

    return parser


def main(argv=None) -> int:
    from repro.obs import (
        NULL_TELEMETRY,
        EventLog,
        Telemetry,
        configure_logging,
        dump_report,
        use_status_bus,
        use_telemetry,
        write_chrome_trace,
    )
    from repro.obs.history import append_report

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.log_level:
            configure_logging(args.log_level)
        _check_stdout_collisions(args)
    except VectraError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    sampling = args.sample_hz is not None or bool(args.flame)
    monitoring = args.monitor_port is not None
    # The monitor serves /metrics and the blackbox snapshots telemetry
    # at death, so either one turns recording on; the blackbox also
    # wants the event ring for its bundle's tail.
    profiling = (args.profile or args.metrics_json or args.metrics_append
                 or args.trace_json or sampling or monitoring
                 or bool(args.blackbox))
    tel = (Telemetry(events=EventLog() if (args.trace_json or args.blackbox)
                     else None)
           if profiling else NULL_TELEMETRY)
    sampler = None
    if sampling:
        from repro.obs.sampling import DEFAULT_SAMPLE_HZ, SamplingProfiler

        hz = (args.sample_hz if args.sample_hz is not None
              else DEFAULT_SAMPLE_HZ)
        try:
            sampler = SamplingProfiler(hz=hz)
        except VectraError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    bus = None
    ticker = None
    # The monitor's /status and /healthz and the blackbox's frame ring
    # both read the ticker, so either one brings the live plane up even
    # without a --status-json sink (a sink-less ticker just retains
    # frames in memory).
    if (args.status_json or args.progress or monitoring
            or args.blackbox):
        from repro.obs.live import StatusBus, StatusTicker

        # Workers heartbeat a few times per stall window, and at least
        # as often as frames are cut, so stalls resolve within one
        # timeout and every frame sees fresh ages.
        heartbeat = max(0.05, min(args.status_interval,
                                  args.stall_timeout / 4.0))
        bus = StatusBus(heartbeat_interval=heartbeat)
        try:
            ticker = StatusTicker(
                bus, interval=args.status_interval,
                stall_timeout=args.stall_timeout, path=args.status_json,
                progress_stream=sys.stderr if args.progress else None,
                tel=tel, command=args.command)
        except VectraError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        ticker.start()
    monitor = None
    if monitoring:
        from repro.obs.monitor import MonitorServer

        try:
            monitor = MonitorServer(
                port=args.monitor_port, tel=tel, ticker=ticker, bus=bus,
                sampler=sampler, command=args.command,
                stall_timeout=args.stall_timeout)
        except VectraError as exc:
            if ticker is not None:
                ticker.close(exit_code=1)
            print(f"error: {exc}", file=sys.stderr)
            return 1
        monitor.start()
        if bus is not None:
            bus.monitor_port = monitor.port
        print(f"monitor: serving /metrics /status /healthz /flame on "
              f"http://{monitor.host}:{monitor.port}", file=sys.stderr)
    recorder = None
    if args.blackbox:
        from repro.obs.blackbox import install_blackbox

        recorder = install_blackbox(
            args.blackbox, tel=tel, bus=bus, ticker=ticker,
            command=args.command,
            argv=list(argv) if argv is not None else sys.argv[1:])
    code = 0
    try:
        from repro.obs.sampling import use_sampler

        with use_telemetry(tel), use_status_bus(bus), \
                use_sampler(sampler), \
                tel.span(f"command.{args.command}"):
            if sampler is not None:
                sampler.start()
            code = args.func(args)
    except VectraError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = 1
    except BaseException as exc:
        # The flight recorder must see the crash here: by the time the
        # exception reaches sys.excepthook the finally block below has
        # already torn the recorder down.
        if recorder is not None:
            recorder.record_exception(exc)
        # The done frame should not claim success for a crashed run.
        code = 130 if isinstance(exc, KeyboardInterrupt) else 1
        raise
    finally:
        # The final 'done' frame carries the exit code and lands even on
        # failure — a watcher sees how the run ended either way.
        if ticker is not None:
            ticker.close(exit_code=code)
        if monitor is not None:
            monitor.close()
        if recorder is not None:
            recorder.uninstall()
        # Reports/timelines are written even when the run failed — a
        # truncated run's telemetry is exactly what debugging needs.
        if sampler is not None:
            sampler.stop()
            tel.add_samples(sampler.folded_counts())
            tel.count("sampling.samples", sampler.total_samples)
            tel.count("sampling.ir_samples", sampler.ir_samples)
        if tel.enabled:
            tel.record_memory()
            if args.flame:
                from repro.obs.flamegraph import write_flame

                try:
                    fmt = write_flame(tel.samples, args.flame,
                                      title=f"vectra {args.command}")
                except OSError as exc:
                    print(f"error: cannot write flamegraph: {exc}",
                          file=sys.stderr)
                    code = 1
                else:
                    if args.flame != "-":
                        n = sum(tel.samples.values())
                        print(f"flamegraph ({fmt}, {n} samples) written "
                              f"to {args.flame}", file=sys.stderr)
            if args.profile:
                print(tel.format_table(), file=sys.stderr)
            if args.metrics_json or args.metrics_append:
                report = tel.report(command=args.command, exit_code=code)
                if args.metrics_json:
                    try:
                        dump_report(report, args.metrics_json)
                    except OSError as exc:
                        print(f"error: cannot write metrics report: {exc}",
                              file=sys.stderr)
                        code = 1
                if args.metrics_append:
                    try:
                        append_report(args.metrics_append, report)
                    except OSError as exc:
                        print(f"error: cannot append to ledger: {exc}",
                              file=sys.stderr)
                        code = 1
            if args.trace_json:
                try:
                    write_chrome_trace(tel.events, args.trace_json)
                except OSError as exc:
                    print(f"error: cannot write trace timeline: {exc}",
                          file=sys.stderr)
                    code = 1
                else:
                    if tel.events is not None and tel.events.dropped:
                        print(
                            f"warning: timeline ring buffer dropped "
                            f"{tel.events.dropped} event(s) (capacity "
                            f"{tel.events.capacity}); the exported trace "
                            f"is missing its oldest events",
                            file=sys.stderr,
                        )
    return code


if __name__ == "__main__":
    sys.exit(main())
