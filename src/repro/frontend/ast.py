"""AST node definitions for mini-C.

Expression nodes carry a ``type`` slot that semantic analysis fills with a
resolved :mod:`repro.ir.types` type.  Statement and declaration nodes carry
source locations for diagnostics and loop naming.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import SourceLocation


class Node:
    """Base class for every AST node."""

    __slots__ = ("loc",)

    def __init__(self, loc: SourceLocation):
        self.loc = loc


# ---------------------------------------------------------------------------
# Types as written in source (resolved to IR types by sema).
# ---------------------------------------------------------------------------


class TypeSpec(Node):
    """A syntactic type: base name, pointer depth, and array extents.

    ``base`` is one of "int", "float", "double", "void", or "struct <name>".
    ``array_dims`` holds constant expressions, outermost first.
    """

    __slots__ = ("base", "pointer_depth", "array_dims", "is_const")

    def __init__(
        self,
        loc: SourceLocation,
        base: str,
        pointer_depth: int = 0,
        array_dims: Optional[Sequence["Expr"]] = None,
        is_const: bool = False,
    ):
        super().__init__(loc)
        self.base = base
        self.pointer_depth = pointer_depth
        self.array_dims = list(array_dims or [])
        self.is_const = is_const


# ---------------------------------------------------------------------------
# Expressions.
# ---------------------------------------------------------------------------


class Expr(Node):
    __slots__ = ("type",)

    def __init__(self, loc: SourceLocation):
        super().__init__(loc)
        self.type = None  # filled by sema


class IntLit(Expr):
    __slots__ = ("value",)

    def __init__(self, loc, value: int):
        super().__init__(loc)
        self.value = value


class FloatLit(Expr):
    __slots__ = ("value",)

    def __init__(self, loc, value: float):
        super().__init__(loc)
        self.value = value


class Ident(Expr):
    __slots__ = ("name", "symbol")

    def __init__(self, loc, name: str):
        super().__init__(loc)
        self.name = name
        self.symbol = None  # sema: the Symbol this name resolves to


class BinOp(Expr):
    """Arithmetic/relational/logical binary operation (no assignment)."""

    __slots__ = ("op", "left", "right")

    def __init__(self, loc, op: str, left: Expr, right: Expr):
        super().__init__(loc)
        self.op = op
        self.left = left
        self.right = right


class UnOp(Expr):
    """Prefix unary: ``-``, ``+``, ``!``, ``~``."""

    __slots__ = ("op", "operand")

    def __init__(self, loc, op: str, operand: Expr):
        super().__init__(loc)
        self.op = op
        self.operand = operand


class Assign(Expr):
    """``target op= value``; ``op`` is "", "+", "-", "*", "/", or "%"."""

    __slots__ = ("op", "target", "value")

    def __init__(self, loc, op: str, target: Expr, value: Expr):
        super().__init__(loc)
        self.op = op
        self.target = target
        self.value = value


class IncDec(Expr):
    """``++x`` / ``x++`` / ``--x`` / ``x--``."""

    __slots__ = ("op", "target", "prefix")

    def __init__(self, loc, op: str, target: Expr, prefix: bool):
        super().__init__(loc)
        self.op = op
        self.target = target
        self.prefix = prefix


class Cond(Expr):
    """Ternary ``c ? t : f``."""

    __slots__ = ("cond", "then", "els")

    def __init__(self, loc, cond: Expr, then: Expr, els: Expr):
        super().__init__(loc)
        self.cond = cond
        self.then = then
        self.els = els


class Call(Expr):
    __slots__ = ("name", "args")

    def __init__(self, loc, name: str, args: List[Expr]):
        super().__init__(loc)
        self.name = name
        self.args = args


class Index(Expr):
    """``base[index]`` where base is an array or pointer."""

    __slots__ = ("base", "index")

    def __init__(self, loc, base: Expr, index: Expr):
        super().__init__(loc)
        self.base = base
        self.index = index


class Member(Expr):
    """``base.field`` (arrow=False) or ``base->field`` (arrow=True)."""

    __slots__ = ("base", "field", "arrow")

    def __init__(self, loc, base: Expr, field: str, arrow: bool):
        super().__init__(loc)
        self.base = base
        self.field = field
        self.arrow = arrow


class Deref(Expr):
    __slots__ = ("operand",)

    def __init__(self, loc, operand: Expr):
        super().__init__(loc)
        self.operand = operand


class AddrOf(Expr):
    __slots__ = ("operand",)

    def __init__(self, loc, operand: Expr):
        super().__init__(loc)
        self.operand = operand


class CastExpr(Expr):
    __slots__ = ("target_spec", "operand")

    def __init__(self, loc, target_spec: TypeSpec, operand: Expr):
        super().__init__(loc)
        self.target_spec = target_spec
        self.operand = operand


class SizeofExpr(Expr):
    __slots__ = ("target_spec",)

    def __init__(self, loc, target_spec: TypeSpec):
        super().__init__(loc)
        self.target_spec = target_spec


# ---------------------------------------------------------------------------
# Statements and declarations.
# ---------------------------------------------------------------------------


class Stmt(Node):
    __slots__ = ()


class Block(Stmt):
    __slots__ = ("stmts",)

    def __init__(self, loc, stmts: List[Stmt]):
        super().__init__(loc)
        self.stmts = stmts


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, loc, expr: Expr):
        super().__init__(loc)
        self.expr = expr


class If(Stmt):
    __slots__ = ("cond", "then", "els")

    def __init__(self, loc, cond: Expr, then: Stmt, els: Optional[Stmt]):
        super().__init__(loc)
        self.cond = cond
        self.then = then
        self.els = els


class For(Stmt):
    """``for (init; cond; step) body`` with an optional C label.

    ``init`` is a VarDecl, an ExprStmt, or None.
    """

    __slots__ = ("init", "cond", "step", "body", "label")

    def __init__(self, loc, init, cond: Optional[Expr],
                 step: Optional[Expr], body: Stmt, label: str = ""):
        super().__init__(loc)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body
        self.label = label


class While(Stmt):
    __slots__ = ("cond", "body", "label")

    def __init__(self, loc, cond: Expr, body: Stmt, label: str = ""):
        super().__init__(loc)
        self.cond = cond
        self.body = body
        self.label = label


class DoWhile(Stmt):
    __slots__ = ("cond", "body", "label")

    def __init__(self, loc, cond: Expr, body: Stmt, label: str = ""):
        super().__init__(loc)
        self.cond = cond
        self.body = body
        self.label = label


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, loc, value: Optional[Expr]):
        super().__init__(loc)
        self.value = value


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


class VarDecl(Stmt):
    """One declared variable (multi-declarator lines are split by the
    parser into several VarDecl nodes)."""

    __slots__ = ("name", "spec", "init", "is_global", "symbol")

    def __init__(self, loc, name: str, spec: TypeSpec, init: Optional[Expr],
                 is_global: bool = False):
        super().__init__(loc)
        self.name = name
        self.spec = spec
        self.init = init
        self.is_global = is_global
        self.symbol = None  # filled by sema


class DeclGroup(Stmt):
    """Several VarDecls from one multi-declarator line (``int i, j;``).

    Unlike a Block, a DeclGroup does not open a scope.
    """

    __slots__ = ("decls",)

    def __init__(self, loc, decls: List["VarDecl"]):
        super().__init__(loc)
        self.decls = decls


class StructDecl(Node):
    __slots__ = ("name", "fields")

    def __init__(self, loc, name: str, fields):
        super().__init__(loc)
        self.name = name
        self.fields = fields  # list of (name, TypeSpec)


class Param(Node):
    __slots__ = ("name", "spec", "symbol")

    def __init__(self, loc, name: str, spec: TypeSpec):
        super().__init__(loc)
        self.name = name
        self.spec = spec
        self.symbol = None


class FuncDef(Node):
    __slots__ = ("name", "params", "return_spec", "body")

    def __init__(self, loc, name: str, params: List[Param],
                 return_spec: TypeSpec, body: Block):
        super().__init__(loc)
        self.name = name
        self.params = params
        self.return_spec = return_spec
        self.body = body


class Program(Node):
    __slots__ = ("structs", "globals", "functions")

    def __init__(self, loc, structs: List[StructDecl],
                 globals: List[VarDecl], functions: List[FuncDef]):
        super().__init__(loc)
        self.structs = structs
        self.globals = globals
        self.functions = functions
