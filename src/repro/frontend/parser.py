"""Recursive-descent parser for mini-C.

Produces the AST defined in :mod:`repro.frontend.ast`.  The grammar is a
conventional C expression grammar with these restrictions: declarations use
simple declarators (``type *... name [dims]...``), there is no comma
operator, and function pointers / typedefs are not supported.
"""

from __future__ import annotations

from typing import List

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import Token, TokenKind

_TYPE_KEYWORDS = frozenset({"int", "float", "double", "void", "struct", "const"})

_ASSIGN_OPS = {"=": "", "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%"}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _check_punct(self, text: str) -> bool:
        return self._peek().is_punct(text)

    def _accept_punct(self, text: str) -> bool:
        if self._check_punct(text):
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> Token:
        tok = self._peek()
        if not tok.is_punct(text):
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok.loc)
        return self._advance()

    def _accept_keyword(self, text: str) -> bool:
        if self._peek().is_keyword(text):
            self._advance()
            return True
        return False

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {tok.text!r}", tok.loc)
        return self._advance()

    def _at_type(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        return tok.kind is TokenKind.KEYWORD and tok.text in _TYPE_KEYWORDS

    # -- types -------------------------------------------------------------

    def _parse_base_type(self) -> ast.TypeSpec:
        tok = self._peek()
        is_const = False
        if tok.is_keyword("const"):
            is_const = True
            self._advance()
            tok = self._peek()
        if tok.is_keyword("struct"):
            self._advance()
            name_tok = self._expect_ident()
            spec = ast.TypeSpec(tok.loc, f"struct {name_tok.text}",
                                is_const=is_const)
            return spec
        if tok.kind is TokenKind.KEYWORD and tok.text in (
            "int", "float", "double", "void",
        ):
            self._advance()
            return ast.TypeSpec(tok.loc, tok.text, is_const=is_const)
        raise ParseError(f"expected type, found {tok.text!r}", tok.loc)

    def _parse_pointers(self, spec: ast.TypeSpec) -> ast.TypeSpec:
        while self._accept_punct("*"):
            spec.pointer_depth += 1
        return spec

    def _parse_array_suffix(self, spec: ast.TypeSpec) -> ast.TypeSpec:
        while self._accept_punct("["):
            dim = self._parse_expr()
            self._expect_punct("]")
            spec.array_dims.append(dim)
        return spec

    # -- top level ---------------------------------------------------------

    def parse_program(self) -> ast.Program:
        loc = self._peek().loc
        structs: List[ast.StructDecl] = []
        globals_: List[ast.VarDecl] = []
        functions: List[ast.FuncDef] = []
        while self._peek().kind is not TokenKind.EOF:
            if (
                self._peek().is_keyword("struct")
                and self._peek(2).is_punct("{")
            ):
                structs.append(self._parse_struct_decl())
                continue
            base = self._parse_base_type()
            spec = ast.TypeSpec(base.loc, base.base, base.pointer_depth,
                                is_const=base.is_const)
            self._parse_pointers(spec)
            name_tok = self._expect_ident()
            if self._check_punct("("):
                functions.append(self._parse_func_def(spec, name_tok))
            else:
                globals_.extend(self._parse_var_decls(base, spec, name_tok,
                                                      is_global=True))
        return ast.Program(loc, structs, globals_, functions)

    def _parse_struct_decl(self) -> ast.StructDecl:
        start = self._advance()  # 'struct'
        name_tok = self._expect_ident()
        self._expect_punct("{")
        fields = []
        while not self._accept_punct("}"):
            base = self._parse_base_type()
            while True:
                spec = ast.TypeSpec(base.loc, base.base, base.pointer_depth,
                                    is_const=base.is_const)
                self._parse_pointers(spec)
                fname = self._expect_ident().text
                self._parse_array_suffix(spec)
                fields.append((fname, spec))
                if not self._accept_punct(","):
                    break
            self._expect_punct(";")
        self._expect_punct(";")
        return ast.StructDecl(start.loc, name_tok.text, fields)

    def _parse_var_decls(self, base: ast.TypeSpec, first_spec: ast.TypeSpec,
                         first_name: Token, is_global: bool) -> List[ast.VarDecl]:
        """Parse the rest of ``type d1, d2, ...;`` given the first declarator."""
        decls = []
        spec, name_tok = first_spec, first_name
        while True:
            self._parse_array_suffix(spec)
            init = None
            if self._accept_punct("="):
                init = self._parse_assignment()
            decls.append(
                ast.VarDecl(name_tok.loc, name_tok.text, spec, init, is_global)
            )
            if not self._accept_punct(","):
                break
            spec = ast.TypeSpec(base.loc, base.base, 0, is_const=base.is_const)
            self._parse_pointers(spec)
            name_tok = self._expect_ident()
        self._expect_punct(";")
        return decls

    def _parse_func_def(self, return_spec: ast.TypeSpec,
                        name_tok: Token) -> ast.FuncDef:
        self._expect_punct("(")
        params: List[ast.Param] = []
        if not self._check_punct(")"):
            if self._peek().is_keyword("void") and self._peek(1).is_punct(")"):
                self._advance()
            else:
                while True:
                    base = self._parse_base_type()
                    spec = ast.TypeSpec(base.loc, base.base, base.pointer_depth,
                                        is_const=base.is_const)
                    self._parse_pointers(spec)
                    pname = self._expect_ident()
                    # Array parameters decay to pointers; keep dims for sema.
                    self._parse_array_suffix(spec)
                    params.append(ast.Param(pname.loc, pname.text, spec))
                    if not self._accept_punct(","):
                        break
        self._expect_punct(")")
        body = self._parse_block()
        return ast.FuncDef(name_tok.loc, name_tok.text, params,
                           return_spec, body)

    # -- statements ------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        start = self._expect_punct("{")
        stmts: List[ast.Stmt] = []
        while not self._accept_punct("}"):
            stmts.append(self._parse_stmt())
        return ast.Block(start.loc, stmts)

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.is_punct("{"):
            return self._parse_block()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("for"):
            return self._parse_for("")
        if tok.is_keyword("while"):
            return self._parse_while("")
        if tok.is_keyword("do"):
            return self._parse_do_while("")
        if (
            tok.kind is TokenKind.IDENT
            and self._peek(1).is_punct(":")
            and (
                self._peek(2).is_keyword("for")
                or self._peek(2).is_keyword("while")
                or self._peek(2).is_keyword("do")
            )
        ):
            label = self._advance().text
            self._advance()  # ':'
            if self._peek().is_keyword("for"):
                return self._parse_for(label)
            if self._peek().is_keyword("while"):
                return self._parse_while(label)
            return self._parse_do_while(label)
        if tok.is_keyword("return"):
            self._advance()
            value = None
            if not self._check_punct(";"):
                value = self._parse_expr()
            self._expect_punct(";")
            return ast.Return(tok.loc, value)
        if tok.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return ast.Break(tok.loc)
        if tok.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ast.Continue(tok.loc)
        if self._at_type():
            return self._parse_local_decl()
        if tok.is_punct(";"):
            self._advance()
            return ast.Block(tok.loc, [])
        expr = self._parse_expr()
        self._expect_punct(";")
        return ast.ExprStmt(tok.loc, expr)

    def _parse_local_decl(self) -> ast.Stmt:
        base = self._parse_base_type()
        spec = ast.TypeSpec(base.loc, base.base, 0, is_const=base.is_const)
        self._parse_pointers(spec)
        name_tok = self._expect_ident()
        decls = self._parse_var_decls(base, spec, name_tok, is_global=False)
        if len(decls) == 1:
            return decls[0]
        return ast.DeclGroup(decls[0].loc, list(decls))

    def _parse_if(self) -> ast.If:
        start = self._advance()  # 'if'
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        then = self._parse_stmt()
        els = None
        if self._accept_keyword("else"):
            els = self._parse_stmt()
        return ast.If(start.loc, cond, then, els)

    def _parse_for(self, label: str) -> ast.For:
        start = self._advance()  # 'for'
        self._expect_punct("(")
        init = None
        if self._at_type():
            init = self._parse_local_decl()
        elif not self._check_punct(";"):
            expr = self._parse_expr()
            self._expect_punct(";")
            init = ast.ExprStmt(expr.loc, expr)
        else:
            self._advance()  # ';'
        cond = None
        if not self._check_punct(";"):
            cond = self._parse_expr()
        self._expect_punct(";")
        step = None
        if not self._check_punct(")"):
            step = self._parse_expr()
        self._expect_punct(")")
        body = self._parse_stmt()
        return ast.For(start.loc, init, cond, step, body, label)

    def _parse_while(self, label: str) -> ast.While:
        start = self._advance()
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        body = self._parse_stmt()
        return ast.While(start.loc, cond, body, label)

    def _parse_do_while(self, label: str) -> ast.DoWhile:
        start = self._advance()
        body = self._parse_stmt()
        if not self._accept_keyword("while"):
            raise ParseError("expected 'while' after do-body", self._peek().loc)
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.DoWhile(start.loc, cond, body, label)

    # -- expressions (precedence climbing via nested methods) ------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_ternary()
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment()
            return ast.Assign(tok.loc, _ASSIGN_OPS[tok.text], left, value)
        return left

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_logical_or()
        if self._check_punct("?"):
            tok = self._advance()
            then = self._parse_expr()
            self._expect_punct(":")
            els = self._parse_ternary()
            return ast.Cond(tok.loc, cond, then, els)
        return cond

    def _parse_logical_or(self) -> ast.Expr:
        left = self._parse_logical_and()
        while self._check_punct("||"):
            tok = self._advance()
            right = self._parse_logical_and()
            left = ast.BinOp(tok.loc, "||", left, right)
        return left

    def _parse_logical_and(self) -> ast.Expr:
        left = self._parse_bitor()
        while self._check_punct("&&"):
            tok = self._advance()
            right = self._parse_bitor()
            left = ast.BinOp(tok.loc, "&&", left, right)
        return left

    def _parse_bitor(self) -> ast.Expr:
        left = self._parse_bitxor()
        while self._check_punct("|") and not self._check_punct("||"):
            tok = self._advance()
            right = self._parse_bitxor()
            left = ast.BinOp(tok.loc, "|", left, right)
        return left

    def _parse_bitxor(self) -> ast.Expr:
        left = self._parse_bitand()
        while self._check_punct("^"):
            tok = self._advance()
            right = self._parse_bitand()
            left = ast.BinOp(tok.loc, "^", left, right)
        return left

    def _parse_bitand(self) -> ast.Expr:
        left = self._parse_equality()
        while self._check_punct("&") and not self._check_punct("&&"):
            tok = self._advance()
            right = self._parse_equality()
            left = ast.BinOp(tok.loc, "&", left, right)
        return left

    def _parse_equality(self) -> ast.Expr:
        left = self._parse_relational()
        while self._peek().text in ("==", "!=") and (
            self._peek().kind is TokenKind.PUNCT
        ):
            tok = self._advance()
            right = self._parse_relational()
            left = ast.BinOp(tok.loc, tok.text, left, right)
        return left

    def _parse_relational(self) -> ast.Expr:
        left = self._parse_shift()
        while self._peek().text in ("<", "<=", ">", ">=") and (
            self._peek().kind is TokenKind.PUNCT
        ):
            tok = self._advance()
            right = self._parse_shift()
            left = ast.BinOp(tok.loc, tok.text, left, right)
        return left

    def _parse_shift(self) -> ast.Expr:
        left = self._parse_additive()
        while self._peek().text in ("<<", ">>") and (
            self._peek().kind is TokenKind.PUNCT
        ):
            tok = self._advance()
            right = self._parse_additive()
            left = ast.BinOp(tok.loc, tok.text, left, right)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._peek().text in ("+", "-") and (
            self._peek().kind is TokenKind.PUNCT
        ):
            tok = self._advance()
            right = self._parse_multiplicative()
            left = ast.BinOp(tok.loc, tok.text, left, right)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().text in ("*", "/", "%") and (
            self._peek().kind is TokenKind.PUNCT
        ):
            tok = self._advance()
            right = self._parse_unary()
            left = ast.BinOp(tok.loc, tok.text, left, right)
        return left

    def _is_cast_ahead(self) -> bool:
        """True when the next tokens form ``( type ... )``."""
        return self._check_punct("(") and self._at_type(1)

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.is_punct("-") or tok.is_punct("+") or tok.is_punct("!") or (
            tok.is_punct("~")
        ):
            self._advance()
            operand = self._parse_unary()
            return ast.UnOp(tok.loc, tok.text, operand)
        if tok.is_punct("*"):
            self._advance()
            operand = self._parse_unary()
            return ast.Deref(tok.loc, operand)
        if tok.is_punct("&"):
            self._advance()
            operand = self._parse_unary()
            return ast.AddrOf(tok.loc, operand)
        if tok.is_punct("++") or tok.is_punct("--"):
            self._advance()
            target = self._parse_unary()
            return ast.IncDec(tok.loc, tok.text[0], target, prefix=True)
        if tok.is_keyword("sizeof"):
            self._advance()
            self._expect_punct("(")
            spec = self._parse_base_type()
            self._parse_pointers(spec)
            self._expect_punct(")")
            return ast.SizeofExpr(tok.loc, spec)
        if self._is_cast_ahead():
            self._advance()  # '('
            spec = self._parse_base_type()
            self._parse_pointers(spec)
            self._expect_punct(")")
            operand = self._parse_unary()
            return ast.CastExpr(tok.loc, spec, operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_punct("["):
                self._advance()
                index = self._parse_expr()
                self._expect_punct("]")
                expr = ast.Index(tok.loc, expr, index)
            elif tok.is_punct("."):
                self._advance()
                field = self._expect_ident().text
                expr = ast.Member(tok.loc, expr, field, arrow=False)
            elif tok.is_punct("->"):
                self._advance()
                field = self._expect_ident().text
                expr = ast.Member(tok.loc, expr, field, arrow=True)
            elif tok.is_punct("++") or tok.is_punct("--"):
                self._advance()
                expr = ast.IncDec(tok.loc, tok.text[0], expr, prefix=False)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.INT_LIT:
            self._advance()
            return ast.IntLit(tok.loc, tok.value)
        if tok.kind is TokenKind.FLOAT_LIT:
            self._advance()
            return ast.FloatLit(tok.loc, tok.value)
        if tok.kind is TokenKind.IDENT:
            self._advance()
            if self._check_punct("("):
                self._advance()
                args: List[ast.Expr] = []
                if not self._check_punct(")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                return ast.Call(tok.loc, tok.text, args)
            return ast.Ident(tok.loc, tok.text)
        if tok.is_punct("("):
            self._advance()
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.loc)


def parse(source: str) -> ast.Program:
    """Parse mini-C source text into an (unchecked) AST."""
    return Parser(tokenize(source)).parse_program()
