"""Mini-C frontend: lexer, parser, semantic analysis, IR lowering.

The language is the C subset the paper's workloads need: ``int`` / ``float``
/ ``double`` scalars, multi-dimensional arrays, named structs, pointers and
pointer arithmetic, functions, ``for``/``while``/``do``/``if`` control flow,
and the usual expression operators.  Loops may carry C labels
(``hot: for (...)``), which become stable loop names in analysis reports.

Public surface:

- :func:`compile_source` — source text to a verified IR module.
- :func:`parse_source` — source text to a type-annotated AST (used by the
  static vectorizer, which analyzes source-level subscripts).
"""

from repro.frontend.driver import compile_source, parse_source

__all__ = ["compile_source", "parse_source"]
