"""AST -> IR lowering.

Lowering style is deliberately ``-O0``-like: every named variable lives in
memory (an ``alloca`` slot or a global), and every access is an explicit
load/store.  This is faithful to the paper's setting — their LLVM
instrumentation observes memory traffic — and it is *safe* for the
analysis because the DDG tracks flow dependences only: re-use of a scalar
slot across loop iterations creates anti/output dependences, which the
paper (and we) deliberately ignore, so no spurious serialization results.

Address computation is explicit integer arithmetic feeding ``ptradd``;
the dynamic analysis later sees real byte addresses for every load/store,
which is what the stride subpartitioning consumes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import SemanticError
from repro.frontend import ast
from repro.frontend.sema import INTRINSIC_SIGNATURES, SemanticAnalyzer, Symbol
from repro.ir.builder import IRBuilder
from repro.ir.function import BasicBlock, LoopInfo
from repro.ir.module import GlobalVar, Module
from repro.ir.types import (
    DOUBLE,
    INT32,
    INT64,
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
    VoidType,
)
from repro.ir.values import Constant, GlobalRef, Operand


class _LoopContext:
    """Break/continue targets for one lowered loop."""

    __slots__ = ("info", "latch", "exit")

    def __init__(self, info: LoopInfo, latch: BasicBlock, exit_bb: BasicBlock):
        self.info = info
        self.latch = latch
        self.exit = exit_bb


class Lowerer:
    """Lowers a type-annotated program into an IR module."""

    def __init__(self, analyzer: SemanticAnalyzer, name: str = "module"):
        self.analyzer = analyzer
        self.module = Module(name)
        self.builder = IRBuilder(self.module)
        self._locals: Dict[int, Operand] = {}  # id(Symbol) -> address operand
        self._loop_stack: List[_LoopContext] = []
        self._dead_counter = 0

    # -- entry ------------------------------------------------------------

    def run(self) -> Module:
        for struct in self.analyzer.structs.values():
            self.module.add_struct(struct)
        for vd in self.analyzer.program.globals:
            sym = vd.symbol
            init = None
            if sym.const_value is not None:
                init = [sym.const_value]
            self.module.add_global(GlobalVar(vd.name, sym.type, init))
        for fd in self.analyzer.program.functions:
            self._lower_function(fd)
        return self.module

    # -- helpers ---------------------------------------------------------

    def _addr_of_symbol(self, sym: Symbol) -> Operand:
        if sym.kind == "global":
            return GlobalRef(sym.name, PointerType(sym.type))
        return self._locals[id(sym)]

    def _convert(self, value: Operand, to_type: Type) -> Operand:
        """Insert a cast when the value's type differs from ``to_type``."""
        from_type = value.type
        if from_type == to_type:
            return value
        if isinstance(from_type, PointerType) and isinstance(
            to_type, PointerType
        ):
            # Pointer-to-pointer conversion is a retyping, not a run-time op,
            # but downstream loads need the right pointee size: use CAST.
            return self.builder.cast(value, to_type)
        if isinstance(value, Constant):
            # Fold constant conversions at compile time.
            if isinstance(to_type, FloatType):
                folded = float(value.value)
                if to_type.bits == 32:
                    folded = _round_f32(folded)
                return Constant(folded, to_type)
            if isinstance(to_type, IntType):
                return Constant(_wrap_int(int(value.value), to_type.bits),
                                to_type)
        return self.builder.cast(value, to_type)

    def _to_bool(self, value: Operand) -> Operand:
        """Produce an i32 0/1 from any scalar."""
        t = value.type
        if isinstance(t, FloatType):
            return self.builder.fcmp("ne", value, Constant(0.0, t))
        zero = Constant(0, t if isinstance(t, IntType) else INT64)
        return self.builder.icmp("ne", value, zero)

    def _position_dead_block(self) -> None:
        """Continue emission into an unreachable block after a terminator."""
        block = self.builder.new_block(f"dead{self._dead_counter}_")
        self._dead_counter += 1
        self.builder.position_at(block)

    # -- functions ---------------------------------------------------------

    def _lower_function(self, fd: ast.FuncDef) -> None:
        sig = self.analyzer.functions[fd.name]
        b = self.builder
        params = list(zip([p.name for p in fd.params], sig.param_types))
        b.start_function(fd.name, params, sig.return_type)
        self._locals = {}
        # Spill parameters to allocas so their addresses exist (and so
        # assignment to parameters works uniformly).
        fn = b.function
        for p, reg in zip(fd.params, fn.param_regs):
            slot = b.alloca(reg.type, p.name)
            b.store(reg, slot)
            self._locals[id(p.symbol)] = slot
        # Hoist every local's alloca to the entry block (as clang -O0
        # does).  A slot allocated inside a loop body would otherwise get
        # a fresh, strided address each iteration, distorting the
        # zero-stride operand classification of the stride analysis.
        for decl in _collect_var_decls(fd.body):
            sym = decl.symbol
            slot = b.alloca(sym.type, decl.name)
            self._locals[id(sym)] = slot
        self._lower_block(fd.body)
        if not b.is_terminated:
            self._emit_default_return(sig.return_type)
        # Terminate any dead blocks the lowering left open.
        current = b.block
        for block in fn.blocks:
            if block.terminator is None:
                b.position_at(block)
                self._emit_default_return(sig.return_type)
        b.position_at(current)
        b.finish_function()

    def _emit_default_return(self, return_type: Type) -> None:
        if isinstance(return_type, VoidType):
            self.builder.ret()
        elif isinstance(return_type, FloatType):
            self.builder.ret(Constant(0.0, return_type))
        else:
            self.builder.ret(Constant(0, return_type))

    # -- statements ------------------------------------------------------

    def _lower_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            self._lower_stmt(stmt)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        self.builder.current_line = stmt.loc.line
        if isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._lower_local_decl(stmt)
        elif isinstance(stmt, ast.DeclGroup):
            for decl in stmt.decls:
                self._lower_local_decl(decl)
        elif isinstance(stmt, ast.ExprStmt):
            self._rvalue(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            self.builder.jump(self._loop_stack[-1].exit)
            self._position_dead_block()
        elif isinstance(stmt, ast.Continue):
            self.builder.jump(self._loop_stack[-1].latch)
            self._position_dead_block()
        else:
            raise SemanticError(
                f"cannot lower statement {type(stmt).__name__}", stmt.loc
            )

    def _lower_local_decl(self, vd: ast.VarDecl) -> None:
        sym = vd.symbol
        slot = self._locals[id(sym)]  # alloca hoisted to function entry
        if vd.init is not None:
            value = self._rvalue(vd.init)
            value = self._convert(value, _storable(sym.type))
            self.builder.store(value, slot)

    def _lower_if(self, stmt: ast.If) -> None:
        b = self.builder
        cond = self._to_bool(self._rvalue(stmt.cond))
        then_bb = b.new_block("then")
        end_bb = b.new_block("endif")
        else_bb = b.new_block("else") if stmt.els is not None else end_bb
        b.cbranch(cond, then_bb, else_bb)
        b.position_at(then_bb)
        self._lower_stmt(stmt.then)
        if not b.is_terminated:
            b.jump(end_bb)
        if stmt.els is not None:
            b.position_at(else_bb)
            self._lower_stmt(stmt.els)
            if not b.is_terminated:
                b.jump(end_bb)
        b.position_at(end_bb)

    def _loop_scaffold(self, label: str, line: int):
        depth = len(self._loop_stack) + 1
        parent = self._loop_stack[-1].info.loop_id if self._loop_stack else None
        info = self.builder.new_loop(line, depth, parent, label)
        return info

    def _lower_for(self, stmt: ast.For) -> None:
        b = self.builder
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        info = self._loop_scaffold(stmt.label, stmt.loc.line)
        header = b.new_block("head")
        body_bb = b.new_block("body")
        latch = b.new_block("latch")
        exit_bb = b.new_block("exit")
        b.loop_enter(info)
        b.jump(header)
        b.position_at(header)
        if stmt.cond is not None:
            cond = self._to_bool(self._rvalue(stmt.cond))
            b.cbranch(cond, body_bb, exit_bb)
        else:
            b.jump(body_bb)
        b.position_at(body_bb)
        self._loop_stack.append(_LoopContext(info, latch, exit_bb))
        self._lower_stmt(stmt.body)
        self._loop_stack.pop()
        if not b.is_terminated:
            b.jump(latch)
        b.position_at(latch)
        if stmt.step is not None:
            self._rvalue(stmt.step)
        b.loop_next(info)
        b.jump(header)
        b.position_at(exit_bb)
        b.loop_exit(info)

    def _lower_while(self, stmt: ast.While) -> None:
        b = self.builder
        info = self._loop_scaffold(stmt.label, stmt.loc.line)
        header = b.new_block("whead")
        body_bb = b.new_block("wbody")
        latch = b.new_block("wlatch")
        exit_bb = b.new_block("wexit")
        b.loop_enter(info)
        b.jump(header)
        b.position_at(header)
        cond = self._to_bool(self._rvalue(stmt.cond))
        b.cbranch(cond, body_bb, exit_bb)
        b.position_at(body_bb)
        self._loop_stack.append(_LoopContext(info, latch, exit_bb))
        self._lower_stmt(stmt.body)
        self._loop_stack.pop()
        if not b.is_terminated:
            b.jump(latch)
        b.position_at(latch)
        b.loop_next(info)
        b.jump(header)
        b.position_at(exit_bb)
        b.loop_exit(info)

    def _lower_do_while(self, stmt: ast.DoWhile) -> None:
        b = self.builder
        info = self._loop_scaffold(stmt.label, stmt.loc.line)
        body_bb = b.new_block("dbody")
        latch = b.new_block("dlatch")
        exit_bb = b.new_block("dexit")
        b.loop_enter(info)
        b.jump(body_bb)
        b.position_at(body_bb)
        self._loop_stack.append(_LoopContext(info, latch, exit_bb))
        self._lower_stmt(stmt.body)
        self._loop_stack.pop()
        if not b.is_terminated:
            b.jump(latch)
        b.position_at(latch)
        cond = self._to_bool(self._rvalue(stmt.cond))
        b.loop_next(info)
        b.cbranch(cond, body_bb, exit_bb)
        b.position_at(exit_bb)
        b.loop_exit(info)

    def _lower_return(self, stmt: ast.Return) -> None:
        fn = self.builder.function
        value = None
        if stmt.value is not None:
            value = self._rvalue(stmt.value)
            value = self._convert(value, fn.return_type)
        # Keep loop markers balanced: a return from inside loops must close
        # every active loop region before leaving the function.
        for ctx in reversed(self._loop_stack):
            self.builder.loop_exit(ctx.info)
        if value is not None:
            self.builder.ret(value)
        else:
            self.builder.ret()
        self._position_dead_block()

    # -- lvalues (addresses) ------------------------------------------------

    def _lvalue(self, expr: ast.Expr) -> Operand:
        """Lower an lvalue expression to its address (a pointer operand)."""
        if isinstance(expr, ast.Ident):
            return self._addr_of_symbol(expr.symbol)
        if isinstance(expr, ast.Index):
            return self._index_address(expr)
        if isinstance(expr, ast.Member):
            return self._member_address(expr)
        if isinstance(expr, ast.Deref):
            ptr = self._rvalue(expr.operand)
            want = PointerType(expr.type)
            if ptr.type != want:
                ptr = self.builder.cast(ptr, want)
            return ptr
        raise SemanticError("expression is not an lvalue", expr.loc)

    def _index_address(self, expr: ast.Index) -> Operand:
        b = self.builder
        base_type = expr.base.type
        if isinstance(base_type, ArrayType):
            base_addr = self._lvalue(expr.base)
            elem = base_type.elem
        else:  # pointer (possibly decayed array)
            base_addr = self._rvalue(expr.base)
            assert isinstance(base_type, (PointerType, ArrayType))
            elem = (
                base_type.pointee
                if isinstance(base_type, PointerType)
                else base_type.elem
            )
        index = self._convert(self._rvalue(expr.index), INT64)
        size = Constant(elem.sizeof(), INT64)
        if isinstance(index, Constant):
            offset: Operand = Constant(index.value * elem.sizeof(), INT64)
        else:
            offset = b.mul(index, size)
        return b.ptradd(base_addr, offset, PointerType(elem))

    def _member_address(self, expr: ast.Member) -> Operand:
        b = self.builder
        if expr.arrow:
            base_addr = self._rvalue(expr.base)
            struct = expr.base.type.pointee
        else:
            base_addr = self._lvalue(expr.base)
            struct = expr.base.type
        assert isinstance(struct, StructType)
        offset = struct.field_offset(expr.field)
        ftype = struct.field_type(expr.field)
        return b.ptradd(base_addr, Constant(offset, INT64), PointerType(ftype))

    # -- rvalues ------------------------------------------------------------

    def _rvalue(self, expr: ast.Expr) -> Operand:
        method = getattr(self, f"_rv_{type(expr).__name__}")
        return method(expr)

    def _rv_IntLit(self, expr: ast.IntLit) -> Operand:
        return Constant(expr.value, expr.type)

    def _rv_FloatLit(self, expr: ast.FloatLit) -> Operand:
        return Constant(expr.value, expr.type)

    def _rv_Ident(self, expr: ast.Ident) -> Operand:
        sym = expr.symbol
        if isinstance(sym.type, ArrayType):
            # Array-to-pointer decay: the value *is* the address.
            addr = self._addr_of_symbol(sym)
            want = PointerType(sym.type.elem)
            if addr.type != want:
                addr = self.builder.cast(addr, want)
            return addr
        addr = self._addr_of_symbol(sym)
        return self.builder.load(addr)

    def _rv_BinOp(self, expr: ast.BinOp) -> Operand:
        op = expr.op
        if op in ("&&", "||"):
            return self._short_circuit(expr)
        b = self.builder
        if op in ("==", "!=", "<", "<=", ">", ">="):
            left = self._rvalue(expr.left)
            right = self._rvalue(expr.right)
            common = _compare_type(left.type, right.type)
            left = self._convert(left, common)
            right = self._convert(right, common)
            pred = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le",
                    ">": "gt", ">=": "ge"}[op]
            if isinstance(common, FloatType):
                return b.fcmp(pred, left, right)
            return b.icmp(pred, left, right)

        left = self._rvalue(expr.left)
        right = self._rvalue(expr.right)
        lt, rt = left.type, right.type
        # Pointer arithmetic.
        if op in ("+", "-") and isinstance(lt, PointerType):
            if isinstance(rt, PointerType):  # pointer difference
                diff = b.sub(self._ptr_to_int(left), self._ptr_to_int(right))
                return b.sdiv(diff, Constant(lt.pointee.sizeof(), INT64))
            offset = self._scaled_offset(right, lt.pointee, negate=(op == "-"))
            return b.ptradd(left, offset, lt)
        if op == "+" and isinstance(rt, PointerType):
            offset = self._scaled_offset(left, rt.pointee, negate=False)
            return b.ptradd(right, offset, rt)

        result_type = expr.type
        left = self._convert(left, result_type)
        right = self._convert(right, result_type)
        if isinstance(result_type, FloatType):
            emit = {"+": b.fadd, "-": b.fsub, "*": b.fmul, "/": b.fdiv}[op]
            return emit(left, right)
        emit = {
            "+": b.add, "-": b.sub, "*": b.mul, "/": b.sdiv, "%": b.srem,
            "&": b.and_, "|": b.or_, "^": b.xor, "<<": b.shl, ">>": b.ashr,
        }[op]
        return emit(left, right)

    def _ptr_to_int(self, ptr: Operand) -> Operand:
        return self.builder.cast(ptr, INT64)

    def _scaled_offset(self, index: Operand, pointee: Type,
                       negate: bool) -> Operand:
        b = self.builder
        index = self._convert(index, INT64)
        size = pointee.sizeof()
        if isinstance(index, Constant):
            value = index.value * size
            return Constant(-value if negate else value, INT64)
        offset = b.mul(index, Constant(size, INT64))
        if negate:
            offset = b.sub(Constant(0, INT64), offset)
        return offset

    def _short_circuit(self, expr: ast.BinOp) -> Operand:
        b = self.builder
        slot = b.alloca(INT32)
        left = self._to_bool(self._rvalue(expr.left))
        rhs_bb = b.new_block("sc_rhs")
        done_bb = b.new_block("sc_done")
        short_bb = b.new_block("sc_short")
        if expr.op == "&&":
            b.cbranch(left, rhs_bb, short_bb)
            short_value = Constant(0, INT32)
        else:
            b.cbranch(left, short_bb, rhs_bb)
            short_value = Constant(1, INT32)
        b.position_at(short_bb)
        b.store(short_value, slot)
        b.jump(done_bb)
        b.position_at(rhs_bb)
        right = self._to_bool(self._rvalue(expr.right))
        b.store(right, slot)
        b.jump(done_bb)
        b.position_at(done_bb)
        return b.load(slot)

    def _rv_UnOp(self, expr: ast.UnOp) -> Operand:
        b = self.builder
        if expr.op == "!":
            value = self._to_bool(self._rvalue(expr.operand))
            return b.xor(value, Constant(1, INT32))
        value = self._rvalue(expr.operand)
        if expr.op == "+":
            return self._convert(value, expr.type)
        value = self._convert(value, expr.type)
        if expr.op == "~":
            return b.xor(value, Constant(-1, expr.type))
        # Negation lowers to subtraction from zero, so FP negate counts as
        # an fsub candidate instruction, as it would in LLVM IR.
        if isinstance(expr.type, FloatType):
            return b.fsub(Constant(0.0, expr.type), value)
        return b.sub(Constant(0, expr.type), value)

    def _rv_Assign(self, expr: ast.Assign) -> Operand:
        b = self.builder
        target_type = _storable(expr.target.type)
        addr = self._lvalue(expr.target)
        if expr.op:
            old = b.load(addr)
            if isinstance(target_type, PointerType):
                rhs = self._rvalue(expr.value)
                offset = self._scaled_offset(rhs, target_type.pointee,
                                             negate=(expr.op == "-"))
                new = b.ptradd(old, offset, target_type)
            else:
                rhs = self._rvalue(expr.value)
                compute_type = expr.type  # target type per C semantics
                old_c = self._convert(old, compute_type)
                rhs_c = self._convert(rhs, compute_type)
                if isinstance(compute_type, FloatType):
                    emit = {"+": b.fadd, "-": b.fsub, "*": b.fmul,
                            "/": b.fdiv}[expr.op]
                else:
                    emit = {"+": b.add, "-": b.sub, "*": b.mul,
                            "/": b.sdiv, "%": b.srem}[expr.op]
                new = self._convert(emit(old_c, rhs_c), target_type)
        else:
            new = self._convert(self._rvalue(expr.value), target_type)
        b.store(new, addr)
        return new

    def _rv_IncDec(self, expr: ast.IncDec) -> Operand:
        b = self.builder
        target_type = _storable(expr.target.type)
        addr = self._lvalue(expr.target)
        old = b.load(addr)
        if isinstance(target_type, PointerType):
            step = target_type.pointee.sizeof()
            delta = Constant(step if expr.op == "+" else -step, INT64)
            new = b.ptradd(old, delta, target_type)
        elif isinstance(target_type, FloatType):
            one = Constant(1.0, target_type)
            new = b.fadd(old, one) if expr.op == "+" else b.fsub(old, one)
        else:
            one = Constant(1, target_type)
            new = b.add(old, one) if expr.op == "+" else b.sub(old, one)
        b.store(new, addr)
        return new if expr.prefix else old

    def _rv_Cond(self, expr: ast.Cond) -> Operand:
        b = self.builder
        result_type = expr.type
        slot = b.alloca(result_type)
        cond = self._to_bool(self._rvalue(expr.cond))
        then_bb = b.new_block("sel_t")
        else_bb = b.new_block("sel_f")
        done_bb = b.new_block("sel_d")
        b.cbranch(cond, then_bb, else_bb)
        b.position_at(then_bb)
        b.store(self._convert(self._rvalue(expr.then), result_type), slot)
        b.jump(done_bb)
        b.position_at(else_bb)
        b.store(self._convert(self._rvalue(expr.els), result_type), slot)
        b.jump(done_bb)
        b.position_at(done_bb)
        return b.load(slot)

    def _rv_Call(self, expr: ast.Call) -> Operand:
        b = self.builder
        if expr.name in INTRINSIC_SIGNATURES:
            args = [
                self._convert(self._rvalue(a), DOUBLE) for a in expr.args
            ]
            return b.call(expr.name, args, DOUBLE)
        sig = self.analyzer.functions[expr.name]
        args = []
        for a, pt in zip(expr.args, sig.param_types):
            value = self._rvalue(a)
            args.append(self._convert(value, pt))
        result = b.call(expr.name, args, sig.return_type)
        if result is None:
            return Constant(0, INT32)  # void call used as expression
        return result

    def _rv_Index(self, expr: ast.Index) -> Operand:
        if isinstance(expr.type, ArrayType):
            # Sub-array rvalue decays to a pointer to its first element.
            addr = self._index_address(expr)
            return self.builder.cast(addr, PointerType(expr.type.elem))
        return self.builder.load(self._index_address(expr))

    def _rv_Member(self, expr: ast.Member) -> Operand:
        if isinstance(expr.type, ArrayType):
            addr = self._member_address(expr)
            return self.builder.cast(addr, PointerType(expr.type.elem))
        return self.builder.load(self._member_address(expr))

    def _rv_Deref(self, expr: ast.Deref) -> Operand:
        return self.builder.load(self._lvalue(expr))

    def _rv_AddrOf(self, expr: ast.AddrOf) -> Operand:
        addr = self._lvalue(expr.operand)
        want = expr.type
        if addr.type != want:
            addr = self.builder.cast(addr, want)
        return addr

    def _rv_CastExpr(self, expr: ast.CastExpr) -> Operand:
        value = self._rvalue(expr.operand)
        return self._convert(value, expr.type)

    def _rv_SizeofExpr(self, expr: ast.SizeofExpr) -> Operand:
        t = self.analyzer.resolve_spec(expr.target_spec)
        return Constant(t.sizeof(), INT64)


def _round_f32(value: float) -> float:
    """Round a Python float to binary32 precision."""
    import struct

    return struct.unpack("f", struct.pack("f", value))[0]


def _collect_var_decls(stmt: ast.Stmt):
    """All VarDecls lexically inside ``stmt``, in source order."""
    out = []

    def walk(node):
        if isinstance(node, ast.Block):
            for s in node.stmts:
                walk(s)
        elif isinstance(node, ast.DeclGroup):
            out.extend(node.decls)
        elif isinstance(node, ast.VarDecl):
            out.append(node)
        elif isinstance(node, ast.If):
            walk(node.then)
            if node.els is not None:
                walk(node.els)
        elif isinstance(node, ast.For):
            if node.init is not None:
                walk(node.init)
            walk(node.body)
        elif isinstance(node, (ast.While, ast.DoWhile)):
            walk(node.body)

    walk(stmt)
    return out


def _wrap_int(value: int, bits: int) -> int:
    """Wrap a Python int to a signed two's-complement value of ``bits``."""
    mask = (1 << bits) - 1
    value &= mask
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def _storable(t: Type) -> Type:
    """The type actually stored for an assignment target (decayed)."""
    if isinstance(t, ArrayType):
        return PointerType(t.elem)
    return t


def _compare_type(a: Type, b: Type) -> Type:
    if isinstance(a, PointerType) or isinstance(b, PointerType):
        return INT64
    if isinstance(a, FloatType) or isinstance(b, FloatType):
        bits = max(
            a.bits if isinstance(a, FloatType) else 0,
            b.bits if isinstance(b, FloatType) else 0,
        )
        return DOUBLE if bits == 64 else FloatType(32)
    bits = max(a.bits, b.bits, 32)
    return INT64 if bits == 64 else INT32


def lower(analyzer: SemanticAnalyzer, name: str = "module") -> Module:
    """Lower an analyzed program to a fresh IR module."""
    return Lowerer(analyzer, name).run()
