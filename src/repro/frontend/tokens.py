"""Token kinds and the Token record for the mini-C lexer."""

from __future__ import annotations

import enum

from repro.errors import SourceLocation


class TokenKind(enum.Enum):
    IDENT = "ident"
    INT_LIT = "int"
    FLOAT_LIT = "float"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "int",
        "float",
        "double",
        "void",
        "struct",
        "if",
        "else",
        "for",
        "while",
        "do",
        "break",
        "continue",
        "return",
        "sizeof",
        "const",
    }
)

# Longest-match-first punctuation table.
PUNCTUATORS = (
    "<<=",
    ">>=",
    "->",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "<",
    ">",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
    ";",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
)


class Token:
    """One lexical token with its source location."""

    __slots__ = ("kind", "text", "value", "loc")

    def __init__(self, kind: TokenKind, text: str, loc: SourceLocation, value=None):
        self.kind = kind
        self.text = text
        self.value = value
        self.loc = loc

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:
        return f"<{self.kind.value} {self.text!r} @{self.loc!r}>"
