"""Semantic analysis: scoping, type resolution, and type checking.

Annotates the AST in place:

- every :class:`~repro.frontend.ast.Expr` gets a resolved ``.type``;
- every :class:`~repro.frontend.ast.Ident` gets a ``.symbol``;
- every declaration gets a :class:`Symbol` describing its storage.

The checker implements the C conversion rules the workloads rely on:
integer/float usual arithmetic conversions, array-to-pointer decay in
rvalue contexts, and pointer arithmetic scaled by pointee size (the scaling
itself happens in lowering; sema only types it).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SemanticError
from repro.frontend import ast
from repro.ir.types import (
    DOUBLE,
    FLOAT,
    INT32,
    INT64,
    VOID,
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
)

#: Math intrinsics callable without declaration: double -> double except pow
#: and fmin/fmax which take two doubles.
INTRINSIC_SIGNATURES: Dict[str, int] = {
    "exp": 1,
    "sqrt": 1,
    "fabs": 1,
    "sin": 1,
    "cos": 1,
    "log": 1,
    "floor": 1,
    "pow": 2,
    "fmin": 2,
    "fmax": 2,
}


class Symbol:
    """A named entity: global, local, or parameter."""

    __slots__ = ("name", "type", "kind", "is_const", "const_value")

    def __init__(self, name: str, type: Type, kind: str,
                 is_const: bool = False, const_value=None):
        self.name = name
        self.type = type
        self.kind = kind  # "global" | "local" | "param"
        self.is_const = is_const
        self.const_value = const_value

    def __repr__(self) -> str:
        return f"<sym {self.name}: {self.type!r} ({self.kind})>"


class FuncSig:
    __slots__ = ("name", "param_types", "return_type")

    def __init__(self, name: str, param_types: List[Type], return_type: Type):
        self.name = name
        self.param_types = param_types
        self.return_type = return_type


class Scope:
    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.symbols: Dict[str, Symbol] = {}

    def declare(self, sym: Symbol, loc) -> Symbol:
        if sym.name in self.symbols:
            raise SemanticError(f"redeclaration of {sym.name!r}", loc)
        self.symbols[sym.name] = sym
        return sym

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


def _is_arith(t: Type) -> bool:
    return isinstance(t, (IntType, FloatType))


def _common_type(a: Type, b: Type) -> Type:
    """Usual arithmetic conversions for two arithmetic types."""
    if isinstance(a, FloatType) or isinstance(b, FloatType):
        bits = max(
            a.bits if isinstance(a, FloatType) else 0,
            b.bits if isinstance(b, FloatType) else 0,
        )
        return DOUBLE if bits == 64 else FLOAT
    bits = max(a.bits, b.bits, 32)
    return INT64 if bits == 64 else INT32


def _decay(t: Type) -> Type:
    """Array-to-pointer decay for rvalue use."""
    if isinstance(t, ArrayType):
        return PointerType(t.elem)
    return t


class SemanticAnalyzer:
    """Single-pass checker over a parsed program."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.structs: Dict[str, StructType] = {}
        self.functions: Dict[str, FuncSig] = {}
        self.global_scope = Scope()
        self._scope = self.global_scope
        self._current_return: Type = VOID
        self._loop_depth = 0

    # -- entry point ------------------------------------------------------

    def run(self) -> ast.Program:
        for sd in self.program.structs:
            self._declare_struct(sd)
        for vd in self.program.globals:
            self._check_global(vd)
        for fd in self.program.functions:
            self._declare_function(fd)
        for fd in self.program.functions:
            self._check_function(fd)
        if "main" not in self.functions:
            raise SemanticError("program has no main function",
                                self.program.loc)
        return self.program

    # -- types ------------------------------------------------------------------

    def resolve_spec(self, spec: ast.TypeSpec) -> Type:
        base: Type
        if spec.base == "int":
            base = INT32
        elif spec.base == "float":
            base = FLOAT
        elif spec.base == "double":
            base = DOUBLE
        elif spec.base == "void":
            base = VOID
        elif spec.base.startswith("struct "):
            name = spec.base.split(" ", 1)[1]
            if name not in self.structs:
                raise SemanticError(f"unknown struct {name!r}", spec.loc)
            base = self.structs[name]
        else:
            raise SemanticError(f"unknown type {spec.base!r}", spec.loc)
        for _ in range(spec.pointer_depth):
            base = PointerType(base)
        for dim in reversed(spec.array_dims):
            count = self._const_int(dim)
            base = ArrayType(base, count)
        if base.is_void and not spec.pointer_depth and (
            spec.array_dims or spec.is_const
        ):
            raise SemanticError("invalid use of void", spec.loc)
        return base

    def _const_int(self, expr: ast.Expr) -> int:
        """Fold an integer constant expression (array dims)."""
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.Ident):
            sym = self._scope.lookup(expr.name)
            if sym is not None and sym.is_const and sym.const_value is not None:
                return int(sym.const_value)
            raise SemanticError(
                f"{expr.name!r} is not an integer constant", expr.loc
            )
        if isinstance(expr, ast.UnOp) and expr.op == "-":
            return -self._const_int(expr.operand)
        if isinstance(expr, ast.BinOp) and expr.op in ("+", "-", "*", "/", "%"):
            left = self._const_int(expr.left)
            right = self._const_int(expr.right)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                return left // right
            return left % right
        raise SemanticError("expected integer constant expression", expr.loc)

    # -- declarations ------------------------------------------------------

    def _declare_struct(self, sd: ast.StructDecl) -> None:
        if sd.name in self.structs:
            raise SemanticError(f"redefinition of struct {sd.name!r}", sd.loc)
        fields = []
        for fname, fspec in sd.fields:
            fields.append((fname, self.resolve_spec(fspec)))
        self.structs[sd.name] = StructType(sd.name, fields)

    def _check_global(self, vd: ast.VarDecl) -> None:
        t = self.resolve_spec(vd.spec)
        if t.is_void:
            raise SemanticError(f"global {vd.name!r} has void type", vd.loc)
        const_value = None
        if vd.init is not None:
            self._check_expr(vd.init)
            if isinstance(vd.init, ast.IntLit):
                const_value = vd.init.value
            elif isinstance(vd.init, ast.FloatLit):
                const_value = vd.init.value
            elif isinstance(vd.init, ast.UnOp) and isinstance(
                vd.init.operand, (ast.IntLit, ast.FloatLit)
            ):
                if vd.init.op == "-":
                    const_value = -vd.init.operand.value
            if const_value is None:
                raise SemanticError(
                    f"global initializer for {vd.name!r} must be a constant",
                    vd.loc,
                )
        sym = Symbol(vd.name, t, "global", vd.spec.is_const, const_value)
        self.global_scope.declare(sym, vd.loc)
        vd.symbol = sym

    def _declare_function(self, fd: ast.FuncDef) -> None:
        if fd.name in self.functions:
            raise SemanticError(f"redefinition of function {fd.name!r}", fd.loc)
        if fd.name in INTRINSIC_SIGNATURES:
            raise SemanticError(
                f"{fd.name!r} shadows a math intrinsic", fd.loc
            )
        param_types = []
        for p in fd.params:
            t = self.resolve_spec(p.spec)
            param_types.append(_decay(t))
        self.functions[fd.name] = FuncSig(
            fd.name, param_types, self.resolve_spec(fd.return_spec)
        )

    # -- functions / statements --------------------------------------------

    def _check_function(self, fd: ast.FuncDef) -> None:
        sig = self.functions[fd.name]
        self._current_return = sig.return_type
        self._scope = Scope(self.global_scope)
        for p, ptype in zip(fd.params, sig.param_types):
            sym = Symbol(p.name, ptype, "param")
            self._scope.declare(sym, p.loc)
            p.symbol = sym
        self._check_block(fd.body, new_scope=False)
        self._scope = self.global_scope

    def _check_block(self, block: ast.Block, new_scope: bool = True) -> None:
        if new_scope:
            self._scope = Scope(self._scope)
        for stmt in block.stmts:
            self._check_stmt(stmt)
        if new_scope:
            assert self._scope.parent is not None
            self._scope = self._scope.parent

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._check_local_decl(stmt)
        elif isinstance(stmt, ast.DeclGroup):
            for decl in stmt.decls:
                self._check_local_decl(decl)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._check_cond(stmt.cond)
            self._check_stmt(stmt.then)
            if stmt.els is not None:
                self._check_stmt(stmt.els)
        elif isinstance(stmt, ast.For):
            self._scope = Scope(self._scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init)
            if stmt.cond is not None:
                self._check_cond(stmt.cond)
            if stmt.step is not None:
                self._check_expr(stmt.step)
            self._loop_depth += 1
            self._check_stmt(stmt.body)
            self._loop_depth -= 1
            assert self._scope.parent is not None
            self._scope = self._scope.parent
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            self._check_cond(stmt.cond)
            self._loop_depth += 1
            self._check_stmt(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                t = self._check_expr(stmt.value)
                if self._current_return.is_void:
                    raise SemanticError("returning a value from void function",
                                        stmt.loc)
                self._require_convertible(t, self._current_return, stmt.loc)
            elif not self._current_return.is_void:
                raise SemanticError("missing return value", stmt.loc)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                raise SemanticError("break/continue outside loop", stmt.loc)
        else:
            raise SemanticError(f"unhandled statement {type(stmt).__name__}",
                                stmt.loc)

    def _check_local_decl(self, vd: ast.VarDecl) -> None:
        t = self.resolve_spec(vd.spec)
        if t.is_void:
            raise SemanticError(f"variable {vd.name!r} has void type", vd.loc)
        const_value = None
        if vd.init is not None:
            it = self._check_expr(vd.init)
            self._require_convertible(_decay(it), _decay(t), vd.loc)
            if vd.spec.is_const and isinstance(vd.init, ast.IntLit):
                const_value = vd.init.value
        sym = Symbol(vd.name, t, "local", vd.spec.is_const, const_value)
        self._scope.declare(sym, vd.loc)
        vd.symbol = sym

    def _check_cond(self, expr: ast.Expr) -> None:
        t = self._check_expr(expr)
        if not (_is_arith(t) or isinstance(t, PointerType)):
            raise SemanticError("condition is not scalar", expr.loc)

    # -- conversions ------------------------------------------------------

    def _require_convertible(self, src: Type, dst: Type, loc) -> None:
        src = _decay(src)
        dst = _decay(dst)
        if src == dst:
            return
        if _is_arith(src) and _is_arith(dst):
            return
        if isinstance(src, PointerType) and isinstance(dst, PointerType):
            return  # C would warn on incompatible pointers; we allow
        if isinstance(src, IntType) and isinstance(dst, PointerType):
            return  # null-pointer style assignments
        raise SemanticError(f"cannot convert {src!r} to {dst!r}", loc)

    # -- lvalues ----------------------------------------------------------

    def _is_lvalue(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.Ident):
            return expr.symbol is not None
        return isinstance(expr, (ast.Index, ast.Member, ast.Deref))

    # -- expressions --------------------------------------------------------

    def _check_expr(self, expr: ast.Expr) -> Type:
        method = getattr(self, f"_check_{type(expr).__name__}")
        t = method(expr)
        expr.type = t
        return t

    def _check_IntLit(self, expr: ast.IntLit) -> Type:
        return INT64 if abs(expr.value) > 2**31 - 1 else INT32

    def _check_FloatLit(self, expr: ast.FloatLit) -> Type:
        return DOUBLE

    def _check_Ident(self, expr: ast.Ident) -> Type:
        sym = self._scope.lookup(expr.name)
        if sym is None:
            raise SemanticError(f"use of undeclared name {expr.name!r}",
                                expr.loc)
        expr.symbol = sym
        return sym.type

    def _check_BinOp(self, expr: ast.BinOp) -> Type:
        lt = self._check_expr(expr.left)
        rt = self._check_expr(expr.right)
        op = expr.op
        if op in ("&&", "||"):
            return INT32
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return INT32
        lt_d, rt_d = _decay(lt), _decay(rt)
        if op in ("+", "-"):
            if isinstance(lt_d, PointerType) and isinstance(rt_d, IntType):
                return lt_d
            if (
                op == "+"
                and isinstance(rt_d, PointerType)
                and isinstance(lt_d, IntType)
            ):
                return rt_d
            if (
                op == "-"
                and isinstance(lt_d, PointerType)
                and isinstance(rt_d, PointerType)
            ):
                return INT64
        if op in ("%", "&", "|", "^", "<<", ">>"):
            if not (isinstance(lt_d, IntType) and isinstance(rt_d, IntType)):
                raise SemanticError(f"operator {op!r} requires integers",
                                    expr.loc)
            return _common_type(lt_d, rt_d)
        if not (_is_arith(lt_d) and _is_arith(rt_d)):
            raise SemanticError(
                f"invalid operands to {op!r}: {lt!r}, {rt!r}", expr.loc
            )
        return _common_type(lt_d, rt_d)

    def _check_UnOp(self, expr: ast.UnOp) -> Type:
        t = _decay(self._check_expr(expr.operand))
        if expr.op == "!":
            return INT32
        if expr.op == "~":
            if not isinstance(t, IntType):
                raise SemanticError("~ requires an integer", expr.loc)
            return t
        if not _is_arith(t):
            raise SemanticError(f"unary {expr.op!r} requires arithmetic type",
                                expr.loc)
        return t

    def _check_Assign(self, expr: ast.Assign) -> Type:
        tt = self._check_expr(expr.target)
        if not self._is_lvalue(expr.target):
            raise SemanticError("assignment target is not an lvalue", expr.loc)
        if isinstance(tt, ArrayType):
            raise SemanticError("cannot assign to an array", expr.loc)
        vt = self._check_expr(expr.value)
        if expr.op:
            if isinstance(tt, PointerType):
                if expr.op not in ("+", "-") or not isinstance(
                    _decay(vt), IntType
                ):
                    raise SemanticError("invalid pointer compound assignment",
                                        expr.loc)
            elif not (_is_arith(tt) and _is_arith(_decay(vt))):
                raise SemanticError("invalid compound assignment", expr.loc)
        else:
            self._require_convertible(vt, tt, expr.loc)
        return tt

    def _check_IncDec(self, expr: ast.IncDec) -> Type:
        t = self._check_expr(expr.target)
        if not self._is_lvalue(expr.target):
            raise SemanticError("++/-- target is not an lvalue", expr.loc)
        if not (_is_arith(t) or isinstance(t, PointerType)):
            raise SemanticError("++/-- requires scalar type", expr.loc)
        return t

    def _check_Cond(self, expr: ast.Cond) -> Type:
        self._check_cond(expr.cond)
        tt = _decay(self._check_expr(expr.then))
        et = _decay(self._check_expr(expr.els))
        if tt == et:
            return tt
        if _is_arith(tt) and _is_arith(et):
            return _common_type(tt, et)
        raise SemanticError("incompatible ternary arms", expr.loc)

    def _check_Call(self, expr: ast.Call) -> Type:
        if expr.name in INTRINSIC_SIGNATURES:
            expected = INTRINSIC_SIGNATURES[expr.name]
            if len(expr.args) != expected:
                raise SemanticError(
                    f"{expr.name} expects {expected} argument(s)", expr.loc
                )
            for arg in expr.args:
                t = _decay(self._check_expr(arg))
                if not _is_arith(t):
                    raise SemanticError(
                        f"{expr.name} requires arithmetic arguments", arg.loc
                    )
            return DOUBLE
        sig = self.functions.get(expr.name)
        if sig is None:
            raise SemanticError(f"call to undeclared function {expr.name!r}",
                                expr.loc)
        if len(expr.args) != len(sig.param_types):
            raise SemanticError(
                f"{expr.name} expects {len(sig.param_types)} argument(s), "
                f"got {len(expr.args)}",
                expr.loc,
            )
        for arg, pt in zip(expr.args, sig.param_types):
            at = self._check_expr(arg)
            self._require_convertible(at, pt, arg.loc)
        return sig.return_type

    def _check_Index(self, expr: ast.Index) -> Type:
        bt = self._check_expr(expr.base)
        it = _decay(self._check_expr(expr.index))
        if not isinstance(it, IntType):
            raise SemanticError("array index must be an integer", expr.loc)
        if isinstance(bt, ArrayType):
            return bt.elem
        if isinstance(bt, PointerType):
            return bt.pointee
        raise SemanticError(f"cannot index value of type {bt!r}", expr.loc)

    def _check_Member(self, expr: ast.Member) -> Type:
        bt = self._check_expr(expr.base)
        if expr.arrow:
            if not isinstance(bt, PointerType) or not isinstance(
                bt.pointee, StructType
            ):
                raise SemanticError("-> requires pointer to struct", expr.loc)
            st = bt.pointee
        else:
            if not isinstance(bt, StructType):
                raise SemanticError(". requires a struct value", expr.loc)
            st = bt
        if not st.has_field(expr.field):
            raise SemanticError(
                f"struct {st.name} has no field {expr.field!r}", expr.loc
            )
        return st.field_type(expr.field)

    def _check_Deref(self, expr: ast.Deref) -> Type:
        t = _decay(self._check_expr(expr.operand))
        if not isinstance(t, PointerType):
            raise SemanticError("cannot dereference non-pointer", expr.loc)
        return t.pointee

    def _check_AddrOf(self, expr: ast.AddrOf) -> Type:
        t = self._check_expr(expr.operand)
        if not self._is_lvalue(expr.operand):
            raise SemanticError("& requires an lvalue", expr.loc)
        if isinstance(t, ArrayType):
            # &A where A is an array: treated as pointer to first element,
            # which is what the workloads use it for.
            return PointerType(t.elem)
        return PointerType(t)

    def _check_CastExpr(self, expr: ast.CastExpr) -> Type:
        t = self.resolve_spec(expr.target_spec)
        st = _decay(self._check_expr(expr.operand))
        if t.is_void:
            raise SemanticError("cast to void is not supported", expr.loc)
        if not (t.is_scalar and st.is_scalar):
            raise SemanticError("casts require scalar types", expr.loc)
        return t

    def _check_SizeofExpr(self, expr: ast.SizeofExpr) -> Type:
        self.resolve_spec(expr.target_spec)
        return INT64


def analyze(program: ast.Program) -> SemanticAnalyzer:
    """Type-check ``program`` in place; returns the analyzer for its
    struct/function tables."""
    analyzer = SemanticAnalyzer(program)
    analyzer.run()
    return analyzer
