"""Hand-written lexer for mini-C.

Supports decimal and hex integer literals, C float literals (with optional
exponent and ``f`` suffix), ``//`` and ``/* */`` comments, and the
punctuator set in :mod:`repro.frontend.tokens`.
"""

from __future__ import annotations

from typing import List

from repro.errors import LexError, SourceLocation
from repro.frontend.tokens import KEYWORDS, PUNCTUATORS, Token, TokenKind

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = _DIGITS | frozenset("abcdefABCDEF")


class Lexer:
    """Tokenizes a source buffer in a single forward pass."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.line, self.col)

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.source[i] if i < len(self.source) else ""

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            c = self._peek()
            if c in " \t\r\n":
                self._advance()
            elif c == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif c == "/" and self._peek(1) == "*":
                start = self._loc()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.source):
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            else:
                return

    def _lex_number(self) -> Token:
        loc = self._loc()
        start = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if self._peek() not in _HEX_DIGITS:
                raise LexError("malformed hex literal", loc)
            while self._peek() in _HEX_DIGITS:
                self._advance()
            text = self.source[start : self.pos]
            return Token(TokenKind.INT_LIT, text, loc, int(text, 16))

        is_float = False
        while self._peek() in _DIGITS:
            self._advance()
        if self._peek() == "." and self._peek(1) in _DIGITS:
            is_float = True
            self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        elif self._peek() == ".":
            # Trailing dot as in `1.` — still a float literal.
            is_float = True
            self._advance()
        if self._peek() in ("e", "E"):
            save = self.pos
            self._advance()
            if self._peek() in ("+", "-"):
                self._advance()
            if self._peek() in _DIGITS:
                is_float = True
                while self._peek() in _DIGITS:
                    self._advance()
            else:
                # Not an exponent after all (e.g. identifier follows).
                self.pos = save
        text = self.source[start : self.pos]
        if self._peek() in ("f", "F") and is_float:
            self._advance()  # suffix consumed; value stays a Python float
        if is_float:
            return Token(TokenKind.FLOAT_LIT, text, loc, float(text))
        return Token(TokenKind.INT_LIT, text, loc, int(text, 10))

    def _lex_ident(self) -> Token:
        loc = self._loc()
        start = self.pos
        while self._peek() in _IDENT_CONT:
            self._advance()
        text = self.source[start : self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, loc)

    def next_token(self) -> Token:
        self._skip_trivia()
        loc = self._loc()
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", loc)
        c = self._peek()
        if c in _DIGITS or (c == "." and self._peek(1) in _DIGITS):
            return self._lex_number()
        if c in _IDENT_START:
            return self._lex_ident()
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, loc)
        raise LexError(f"unexpected character {c!r}", loc)

    def tokenize(self) -> List[Token]:
        """Lex the whole buffer; the result always ends with one EOF token."""
        out: List[Token] = []
        while True:
            tok = self.next_token()
            out.append(tok)
            if tok.kind is TokenKind.EOF:
                return out


def tokenize(source: str) -> List[Token]:
    return Lexer(source).tokenize()
