"""Frontend driver: source text in, verified IR module (or typed AST) out."""

from __future__ import annotations

from typing import Tuple

from repro.frontend import ast
from repro.frontend.lower import lower
from repro.frontend.parser import parse
from repro.frontend.sema import SemanticAnalyzer, analyze
from repro.ir.module import Module
from repro.ir.verifier import verify_module


def parse_source(source: str) -> Tuple[ast.Program, SemanticAnalyzer]:
    """Parse and type-check; returns the annotated AST and its analyzer.

    The static vectorizer consumes this form: it reasons about source-level
    array subscripts, which the IR has already flattened into address
    arithmetic.
    """
    program = parse(source)
    analyzer = analyze(program)
    return program, analyzer


def compile_source(source: str, name: str = "module") -> Module:
    """Compile mini-C source text to a verified IR module."""
    _, analyzer = parse_source(source)
    module = lower(analyzer, name)
    verify_module(module)
    return module
