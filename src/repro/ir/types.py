"""IR type system.

Types mirror the subset of C the frontend accepts: fixed-width integers,
IEEE floats, pointers, multi-dimensional arrays, and named structs.  Layout
follows the usual C rules on a 64-bit target: row-major arrays, struct
fields at aligned offsets, 8-byte pointers.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import IRError

POINTER_SIZE = 8


class Type:
    """Base class for all IR types."""

    def sizeof(self) -> int:
        raise NotImplementedError

    def alignof(self) -> int:
        return self.sizeof()

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_scalar(self) -> bool:
        return self.is_integer or self.is_float or self.is_pointer

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self, (ArrayType, StructType))


class VoidType(Type):
    """The type of functions that return nothing."""

    def sizeof(self) -> int:
        raise IRError("void has no size")

    def __repr__(self) -> str:
        return "void"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")


class IntType(Type):
    """A signed two's-complement integer of ``bits`` width."""

    __slots__ = ("bits",)

    def __init__(self, bits: int):
        if bits not in (8, 16, 32, 64):
            raise IRError(f"unsupported integer width: {bits}")
        self.bits = bits

    def sizeof(self) -> int:
        return self.bits // 8

    def __repr__(self) -> str:
        return f"i{self.bits}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("int", self.bits))


class FloatType(Type):
    """An IEEE-754 binary float: 32 (C float) or 64 (C double) bits."""

    __slots__ = ("bits",)

    def __init__(self, bits: int):
        if bits not in (32, 64):
            raise IRError(f"unsupported float width: {bits}")
        self.bits = bits

    def sizeof(self) -> int:
        return self.bits // 8

    def __repr__(self) -> str:
        return "f32" if self.bits == 32 else "f64"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FloatType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("float", self.bits))


class PointerType(Type):
    """A pointer to ``pointee``.  All pointers are 8 bytes."""

    __slots__ = ("pointee",)

    def __init__(self, pointee: Type):
        self.pointee = pointee

    def sizeof(self) -> int:
        return POINTER_SIZE

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))


class ArrayType(Type):
    """A fixed-length array.  Multi-dimensional arrays nest: ``[3 x [4 x f64]]``."""

    __slots__ = ("elem", "count")

    def __init__(self, elem: Type, count: int):
        if count < 0:
            raise IRError(f"negative array length: {count}")
        self.elem = elem
        self.count = count

    def sizeof(self) -> int:
        return self.elem.sizeof() * self.count

    def alignof(self) -> int:
        return self.elem.alignof()

    @property
    def scalar_elem(self) -> Type:
        """The innermost non-array element type."""
        t: Type = self
        while isinstance(t, ArrayType):
            t = t.elem
        return t

    @property
    def dims(self) -> tuple:
        """All dimension extents, outermost first."""
        out = []
        t: Type = self
        while isinstance(t, ArrayType):
            out.append(t.count)
            t = t.elem
        return tuple(out)

    def __repr__(self) -> str:
        return f"[{self.count} x {self.elem!r}]"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.elem == self.elem
            and other.count == self.count
        )

    def __hash__(self) -> int:
        return hash(("array", self.elem, self.count))


class StructType(Type):
    """A named struct with ordered, typed fields laid out with C alignment."""

    __slots__ = ("name", "fields", "_offsets", "_size", "_align")

    def __init__(self, name: str, fields: Iterable):
        self.name = name
        self.fields = tuple(fields)  # (field_name, Type) pairs
        seen = set()
        for fname, _ in self.fields:
            if fname in seen:
                raise IRError(f"duplicate field {fname!r} in struct {name}")
            seen.add(fname)
        self._offsets = {}
        offset = 0
        align = 1
        for fname, ftype in self.fields:
            fa = ftype.alignof()
            align = max(align, fa)
            offset = _round_up(offset, fa)
            self._offsets[fname] = offset
            offset += ftype.sizeof()
        self._align = align
        self._size = _round_up(offset, align) if self.fields else 0

    def sizeof(self) -> int:
        return self._size

    def alignof(self) -> int:
        return self._align

    def field_offset(self, name: str) -> int:
        try:
            return self._offsets[name]
        except KeyError:
            raise IRError(f"struct {self.name} has no field {name!r}") from None

    def field_type(self, name: str) -> Type:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        raise IRError(f"struct {self.name} has no field {name!r}")

    def has_field(self, name: str) -> bool:
        return name in self._offsets

    def __repr__(self) -> str:
        return f"struct {self.name}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StructType)
            and other.name == self.name
            and other.fields == self.fields
        )

    def __hash__(self) -> int:
        return hash(("struct", self.name))


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


INT8 = IntType(8)
INT16 = IntType(16)
INT32 = IntType(32)
INT64 = IntType(64)
FLOAT = FloatType(32)
DOUBLE = FloatType(64)
VOID = VoidType()


def sizeof(t: Type) -> int:
    """Size of ``t`` in bytes (module-level convenience mirror)."""
    return t.sizeof()
