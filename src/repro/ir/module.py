"""IR modules: the unit of compilation, tracing, and analysis."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import IRError
from repro.ir.function import Function, LoopInfo
from repro.ir.instructions import Instruction
from repro.ir.types import StructType, Type


class GlobalVar:
    """A module-level variable with static storage.

    ``initializer`` is an optional flat list of scalar values (row-major
    for arrays, field order for structs) applied when memory is laid out.
    """

    __slots__ = ("name", "type", "initializer")

    def __init__(self, name: str, type: Type, initializer=None):
        self.name = name
        self.type = type
        self.initializer = initializer

    def __repr__(self) -> str:
        return f"<global @{self.name} : {self.type!r}>"


class Module:
    """A compiled program: functions, globals, structs, and loop table."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVar] = {}
        self.structs: Dict[str, StructType] = {}
        self.loops: Dict[int, LoopInfo] = {}
        self._next_sid = 0
        self._instructions_by_sid: Dict[int, Instruction] = {}

    # -- construction ----------------------------------------------------

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise IRError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        return function

    def add_global(self, var: GlobalVar) -> GlobalVar:
        if var.name in self.globals:
            raise IRError(f"duplicate global {var.name!r}")
        self.globals[var.name] = var
        return var

    def add_struct(self, struct: StructType) -> StructType:
        if struct.name in self.structs:
            raise IRError(f"duplicate struct {struct.name!r}")
        self.structs[struct.name] = struct
        return struct

    def add_loop(self, info: LoopInfo) -> LoopInfo:
        if info.loop_id in self.loops:
            raise IRError(f"duplicate loop id {info.loop_id}")
        self.loops[info.loop_id] = info
        return info

    def next_sid(self) -> int:
        sid = self._next_sid
        self._next_sid += 1
        return sid

    def register_instruction(self, instr: Instruction) -> None:
        self._instructions_by_sid[instr.sid] = instr

    # -- queries ----------------------------------------------------------

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function {name!r} in module") from None

    def instruction(self, sid: int) -> Instruction:
        """Look up a static instruction by its module-unique id."""
        try:
            return self._instructions_by_sid[sid]
        except KeyError:
            raise IRError(f"no instruction with sid {sid}") from None

    @property
    def num_instructions(self) -> int:
        return len(self._instructions_by_sid)

    def loops_in_function(self, fname: str) -> List[LoopInfo]:
        return [li for li in self.loops.values() if li.function == fname]

    def loop_by_name(self, name: str) -> Optional[LoopInfo]:
        """Find a loop by label or ``function:line`` (both always match,
        regardless of whether the loop carries a label)."""
        for info in self.loops.values():
            if info.label == name:
                return info
            if f"{info.function}:{info.header_line}" == name:
                return info
        return None

    def __repr__(self) -> str:
        return (
            f"<module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals, {len(self.loops)} loops>"
        )
