"""IR instruction set.

The instruction set is deliberately small and LLVM-flavoured.  The four
floating-point arithmetic opcodes (``fadd``/``fsub``/``fmul``/``fdiv``)
are the *candidate instructions* of the paper: the dynamic analysis
characterizes SIMD potential for exactly these, because they are the
operations with vector counterparts in SIMD ISAs (paper §3, "Candidate
Instructions").

Loop structure is communicated to the tracer through pseudo-instructions
``loop.enter`` / ``loop.next`` / ``loop.exit`` emitted by the frontend.
They execute as no-ops but appear in the trace as region markers.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from repro.errors import IRError
from repro.ir.types import Type
from repro.ir.values import Operand, VirtualReg


class Opcode(enum.IntEnum):
    """All IR opcodes.  IntEnum so the interpreter can dispatch on ints."""

    # Integer arithmetic.
    ADD = 1
    SUB = 2
    MUL = 3
    SDIV = 4
    SREM = 5
    # Floating-point arithmetic — the paper's candidate instructions.
    FADD = 10
    FSUB = 11
    FMUL = 12
    FDIV = 13
    # Bitwise / logical.
    AND = 20
    OR = 21
    XOR = 22
    SHL = 23
    ASHR = 24
    # Comparisons (predicate stored in `pred`).
    ICMP = 30
    FCMP = 31
    # Value plumbing.
    CAST = 40
    SELECT = 41
    COPY = 42
    # Memory.
    ALLOCA = 50
    LOAD = 51
    STORE = 52
    PTRADD = 53
    # Control flow.
    JUMP = 60
    CBR = 61
    RET = 62
    CALL = 63
    # Loop region markers (trace-only semantics).
    LOOP_ENTER = 70
    LOOP_NEXT = 71
    LOOP_EXIT = 72


FP_ARITH_OPCODES = frozenset(
    {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV}
)

INT_ARITH_OPCODES = frozenset(
    {Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.SDIV, Opcode.SREM}
)

TERMINATOR_OPCODES = frozenset({Opcode.JUMP, Opcode.CBR, Opcode.RET})

MARKER_OPCODES = frozenset(
    {Opcode.LOOP_ENTER, Opcode.LOOP_NEXT, Opcode.LOOP_EXIT}
)

CMP_PREDICATES = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})


class OpcodeInfo:
    """Static facts about one opcode, used by the verifier and printer."""

    __slots__ = ("mnemonic", "has_result", "num_operands")

    def __init__(self, mnemonic: str, has_result: bool, num_operands):
        self.mnemonic = mnemonic
        self.has_result = has_result
        self.num_operands = num_operands  # int or None for variadic


OPCODE_INFO = {
    Opcode.ADD: OpcodeInfo("add", True, 2),
    Opcode.SUB: OpcodeInfo("sub", True, 2),
    Opcode.MUL: OpcodeInfo("mul", True, 2),
    Opcode.SDIV: OpcodeInfo("sdiv", True, 2),
    Opcode.SREM: OpcodeInfo("srem", True, 2),
    Opcode.FADD: OpcodeInfo("fadd", True, 2),
    Opcode.FSUB: OpcodeInfo("fsub", True, 2),
    Opcode.FMUL: OpcodeInfo("fmul", True, 2),
    Opcode.FDIV: OpcodeInfo("fdiv", True, 2),
    Opcode.AND: OpcodeInfo("and", True, 2),
    Opcode.OR: OpcodeInfo("or", True, 2),
    Opcode.XOR: OpcodeInfo("xor", True, 2),
    Opcode.SHL: OpcodeInfo("shl", True, 2),
    Opcode.ASHR: OpcodeInfo("ashr", True, 2),
    Opcode.ICMP: OpcodeInfo("icmp", True, 2),
    Opcode.FCMP: OpcodeInfo("fcmp", True, 2),
    Opcode.CAST: OpcodeInfo("cast", True, 1),
    Opcode.SELECT: OpcodeInfo("select", True, 3),
    Opcode.COPY: OpcodeInfo("copy", True, 1),
    Opcode.ALLOCA: OpcodeInfo("alloca", True, 0),
    Opcode.LOAD: OpcodeInfo("load", True, 1),
    Opcode.STORE: OpcodeInfo("store", False, 2),
    Opcode.PTRADD: OpcodeInfo("ptradd", True, 2),
    Opcode.JUMP: OpcodeInfo("jump", False, 0),
    Opcode.CBR: OpcodeInfo("cbr", False, 1),
    Opcode.RET: OpcodeInfo("ret", False, None),
    Opcode.CALL: OpcodeInfo("call", True, None),
    Opcode.LOOP_ENTER: OpcodeInfo("loop.enter", False, 0),
    Opcode.LOOP_NEXT: OpcodeInfo("loop.next", False, 0),
    Opcode.LOOP_EXIT: OpcodeInfo("loop.exit", False, 0),
}


class Instruction:
    """One static IR instruction.

    Attributes
    ----------
    sid:
        Module-unique static instruction id.  Dynamic trace records refer
        to instructions by this id, exactly like the unique instrumentation
        ids the paper assigns (§3.1).
    opcode:
        The :class:`Opcode`.
    result:
        Destination :class:`VirtualReg`, or None.
    operands:
        Tuple of :class:`Operand` inputs.
    targets:
        Successor basic blocks for terminators (JUMP: 1, CBR: 2).
    pred:
        Comparison predicate for ICMP/FCMP ("eq", "ne", "lt", ...).
    callee:
        Function name for CALL.
    loop_id:
        Loop id for the loop marker pseudo-instructions.
    alloc_type:
        Allocated value type for ALLOCA.
    line:
        Source line the instruction was lowered from (0 when synthetic).
    """

    __slots__ = (
        "sid",
        "opcode",
        "result",
        "operands",
        "targets",
        "pred",
        "callee",
        "loop_id",
        "alloc_type",
        "line",
    )

    def __init__(
        self,
        sid: int,
        opcode: Opcode,
        result: Optional[VirtualReg] = None,
        operands: Sequence[Operand] = (),
        targets: Sequence = (),
        pred: Optional[str] = None,
        callee: Optional[str] = None,
        loop_id: Optional[int] = None,
        alloc_type: Optional[Type] = None,
        line: int = 0,
    ):
        info = OPCODE_INFO[opcode]
        if info.num_operands is not None and len(operands) != info.num_operands:
            raise IRError(
                f"{info.mnemonic} expects {info.num_operands} operands, "
                f"got {len(operands)}"
            )
        if info.has_result and result is None and opcode != Opcode.CALL:
            raise IRError(f"{info.mnemonic} requires a result register")
        if opcode in (Opcode.ICMP, Opcode.FCMP) and pred not in CMP_PREDICATES:
            raise IRError(f"bad comparison predicate: {pred!r}")
        self.sid = sid
        self.opcode = opcode
        self.result = result
        self.operands = tuple(operands)
        self.targets = tuple(targets)
        self.pred = pred
        self.callee = callee
        self.loop_id = loop_id
        self.alloc_type = alloc_type
        self.line = line

    @property
    def is_fp_arith(self) -> bool:
        """True for the paper's candidate instructions (FP + - * /)."""
        return self.opcode in FP_ARITH_OPCODES

    @property
    def is_int_arith(self) -> bool:
        return self.opcode in INT_ARITH_OPCODES

    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATOR_OPCODES

    @property
    def is_marker(self) -> bool:
        return self.opcode in MARKER_OPCODES

    @property
    def mnemonic(self) -> str:
        return OPCODE_INFO[self.opcode].mnemonic

    def __repr__(self) -> str:
        parts = [self.mnemonic]
        if self.pred:
            parts.append(self.pred)
        if self.callee:
            parts.append(f"@{self.callee}")
        if self.loop_id is not None:
            parts.append(f"L{self.loop_id}")
        ops = ", ".join(repr(o) for o in self.operands)
        if self.targets:
            tgt = ", ".join(f"^{b.name}" for b in self.targets)
            ops = f"{ops} {tgt}" if ops else tgt
        head = f"{self.result!r} = " if self.result is not None else ""
        body = " ".join(parts)
        return f"[{self.sid}] {head}{body} {ops}".rstrip()
