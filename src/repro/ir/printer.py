"""Deterministic textual dump of IR modules, for tests and debugging."""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.module import Module


def print_function(fn: Function) -> str:
    params = ", ".join(
        f"{r!r}: {t!r}" for r, t in zip(fn.param_regs, fn.param_types)
    )
    lines = [f"func @{fn.name}({params}) -> {fn.return_type!r} {{"]
    for block in fn.blocks:
        lines.append(f"{block.name}:")
        for instr in block.instructions:
            lines.append(f"  {instr!r}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    chunks = [f"module {module.name}"]
    for struct in module.structs.values():
        fields = "; ".join(f"{n}: {t!r}" for n, t in struct.fields)
        chunks.append(f"struct {struct.name} {{ {fields} }}")
    for gv in module.globals.values():
        chunks.append(f"global @{gv.name} : {gv.type!r}")
    for fn in module.functions.values():
        chunks.append(print_function(fn))
    return "\n\n".join(chunks) + "\n"
