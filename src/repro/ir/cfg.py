"""CFG analyses: successors/predecessors, reachability, dominators, and
natural-loop detection.

The frontend emits loop structure explicitly (marker instructions), so
the analyses here serve as an independent *validator*: natural loops
discovered from back edges must coincide with the frontend's loop
regions (tested in ``tests/test_cfg.py``), and the verifier-level
structural facts (every block reachable, single terminator) can be
cross-checked.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import IRError
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Opcode


def successors(fn: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    out: Dict[BasicBlock, List[BasicBlock]] = {}
    for block in fn.blocks:
        term = block.terminator
        out[block] = list(term.targets) if term is not None else []
    return out


def predecessors(fn: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in fn.blocks}
    for block, succs in successors(fn).items():
        for succ in succs:
            preds[succ].append(block)
    return preds


def reachable_blocks(fn: Function) -> Set[BasicBlock]:
    succ = successors(fn)
    seen: Set[BasicBlock] = set()
    stack = [fn.entry]
    while stack:
        block = stack.pop()
        if block in seen:
            continue
        seen.add(block)
        stack.extend(succ[block])
    return seen


def reverse_postorder(fn: Function) -> List[BasicBlock]:
    succ = successors(fn)
    order: List[BasicBlock] = []
    seen: Set[BasicBlock] = set()

    def visit(block: BasicBlock) -> None:
        seen.add(block)
        for nxt in succ[block]:
            if nxt not in seen:
                visit(nxt)
        order.append(block)

    visit(fn.entry)
    order.reverse()
    return order


def dominators(fn: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
    """Classic iterative dominator computation over reachable blocks."""
    blocks = reverse_postorder(fn)
    preds = predecessors(fn)
    reachable = set(blocks)
    dom: Dict[BasicBlock, Set[BasicBlock]] = {
        b: set(blocks) for b in blocks
    }
    dom[fn.entry] = {fn.entry}
    changed = True
    while changed:
        changed = False
        for block in blocks:
            if block is fn.entry:
                continue
            incoming = [p for p in preds[block] if p in reachable]
            if incoming:
                new = set.intersection(*(dom[p] for p in incoming))
            else:
                new = set()
            new = new | {block}
            if new != dom[block]:
                dom[block] = new
                changed = True
    return dom


def immediate_dominators(fn: Function) -> Dict[BasicBlock, Optional[BasicBlock]]:
    dom = dominators(fn)
    idom: Dict[BasicBlock, Optional[BasicBlock]] = {fn.entry: None}
    for block, ds in dom.items():
        if block is fn.entry:
            continue
        strict = ds - {block}
        # The idom is the strict dominator dominated by all others.
        best = None
        for cand in strict:
            if all(cand in dom[o] or o is cand for o in strict):
                best = cand
        idom[block] = best
    return idom


class NaturalLoop:
    """A back-edge-defined loop: header plus body block set."""

    __slots__ = ("header", "blocks", "back_edges")

    def __init__(self, header: BasicBlock):
        self.header = header
        self.blocks: Set[BasicBlock] = {header}
        self.back_edges: List[Tuple[BasicBlock, BasicBlock]] = []

    def __repr__(self) -> str:
        return f"<natural-loop {self.header.name} ({len(self.blocks)} blocks)>"


def natural_loops(fn: Function) -> List[NaturalLoop]:
    """Detect natural loops from back edges (tail dominated by head)."""
    dom = dominators(fn)
    preds = predecessors(fn)
    loops: Dict[BasicBlock, NaturalLoop] = {}
    for block in reachable_blocks(fn):
        term = block.terminator
        if term is None:
            continue
        for target in term.targets:
            if target in dom.get(block, set()):
                loop = loops.setdefault(target, NaturalLoop(target))
                loop.back_edges.append((block, target))
                # Collect the loop body by walking predecessors from the
                # latch up to the header.
                stack = [block]
                while stack:
                    b = stack.pop()
                    if b in loop.blocks:
                        continue
                    loop.blocks.add(b)
                    stack.extend(preds[b])
    return list(loops.values())


def marker_loops(fn: Function) -> Dict[int, Set[BasicBlock]]:
    """Blocks between each loop's ENTER and EXIT markers, per loop id —
    the frontend's view of the same structure.

    A block belongs to loop L when it is reachable from L's header
    without passing L's exit; here we approximate by taking the blocks
    of the natural loop whose header holds the first branch after L's
    LOOP_ENTER.  Used only by the cross-validation tests.
    """
    enters: Dict[int, BasicBlock] = {}
    for block in fn.blocks:
        for instr in block.instructions:
            if instr.opcode is Opcode.LOOP_ENTER:
                if instr.loop_id in enters:
                    raise IRError(
                        f"loop {instr.loop_id} entered from two blocks"
                    )
                enters[instr.loop_id] = block
    succ = successors(fn)
    out: Dict[int, Set[BasicBlock]] = {}
    detected = natural_loops(fn)
    for loop_id, enter_block in enters.items():
        # The loop header is the (unique) successor of the marker block.
        targets = succ[enter_block]
        header = targets[0] if targets else None
        match = next(
            (nl for nl in detected if nl.header is header), None
        )
        out[loop_id] = match.blocks if match is not None else set()
    return out
