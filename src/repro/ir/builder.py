"""Convenience builder for emitting IR.

The lowering pass (and tests) construct IR exclusively through this class:
it allocates virtual registers, assigns module-unique static ids, and keeps
the module's sid -> instruction index up to date.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import IRError
from repro.ir.function import BasicBlock, Function, LoopInfo
from repro.ir.instructions import Instruction, Opcode
from repro.ir.module import Module
from repro.ir.types import (
    INT32,
    INT64,
    PointerType,
    Type,
)
from repro.ir.values import Constant, Operand, VirtualReg


class IRBuilder:
    """Stateful IR emitter positioned at the end of a current block."""

    def __init__(self, module: Module):
        self.module = module
        self.function: Optional[Function] = None
        self.block: Optional[BasicBlock] = None
        self._next_reg = 0
        self._next_block = 0
        self._next_loop = 0
        self.current_line = 0

    # -- function / block management ---------------------------------------

    def start_function(
        self,
        name: str,
        params: Sequence[Tuple[str, Type]],
        return_type: Type,
    ) -> Function:
        fn = Function(name, params, return_type)
        self.module.add_function(fn)
        self.function = fn
        self._next_reg = 0
        self._next_block = 0
        for pname, ptype in params:
            fn.param_regs.append(self.new_reg(ptype, pname))
        entry = self.new_block("entry")
        self.position_at(entry)
        return fn

    def finish_function(self) -> Function:
        if self.function is None:
            raise IRError("no function in progress")
        fn = self.function
        fn.num_regs = self._next_reg
        self.function = None
        self.block = None
        return fn

    def new_block(self, hint: str = "bb") -> BasicBlock:
        if self.function is None:
            raise IRError("no function in progress")
        name = f"{hint}{self._next_block}"
        self._next_block += 1
        return self.function.add_block(name)

    def position_at(self, block: BasicBlock) -> None:
        self.block = block

    def new_reg(self, type: Type, name: str = "") -> VirtualReg:
        reg = VirtualReg(self._next_reg, type, name)
        self._next_reg += 1
        return reg

    def new_loop(self, header_line: int, depth: int,
                 parent_id: Optional[int] = None, label: str = "") -> LoopInfo:
        if self.function is None:
            raise IRError("no function in progress")
        info = LoopInfo(
            self._next_loop, self.function.name, header_line, depth,
            parent_id, label,
        )
        self._next_loop += 1
        self.module.add_loop(info)
        return info

    @property
    def is_terminated(self) -> bool:
        return self.block is not None and self.block.terminator is not None

    # -- raw emission --------------------------------------------------------

    def emit(self, opcode: Opcode, result: Optional[VirtualReg] = None,
             operands: Sequence[Operand] = (), **kwargs) -> Instruction:
        if self.block is None:
            raise IRError("builder not positioned at a block")
        instr = Instruction(
            self.module.next_sid(), opcode, result, operands,
            line=kwargs.pop("line", self.current_line), **kwargs,
        )
        self.block.append(instr)
        self.module.register_instruction(instr)
        return instr

    def _binop(self, opcode: Opcode, a: Operand, b: Operand,
               type: Optional[Type] = None) -> VirtualReg:
        result = self.new_reg(type if type is not None else a.type)
        self.emit(opcode, result, (a, b))
        return result

    # -- arithmetic ------------------------------------------------------------

    def add(self, a: Operand, b: Operand) -> VirtualReg:
        return self._binop(Opcode.ADD, a, b)

    def sub(self, a: Operand, b: Operand) -> VirtualReg:
        return self._binop(Opcode.SUB, a, b)

    def mul(self, a: Operand, b: Operand) -> VirtualReg:
        return self._binop(Opcode.MUL, a, b)

    def sdiv(self, a: Operand, b: Operand) -> VirtualReg:
        return self._binop(Opcode.SDIV, a, b)

    def srem(self, a: Operand, b: Operand) -> VirtualReg:
        return self._binop(Opcode.SREM, a, b)

    def fadd(self, a: Operand, b: Operand) -> VirtualReg:
        return self._binop(Opcode.FADD, a, b)

    def fsub(self, a: Operand, b: Operand) -> VirtualReg:
        return self._binop(Opcode.FSUB, a, b)

    def fmul(self, a: Operand, b: Operand) -> VirtualReg:
        return self._binop(Opcode.FMUL, a, b)

    def fdiv(self, a: Operand, b: Operand) -> VirtualReg:
        return self._binop(Opcode.FDIV, a, b)

    def and_(self, a: Operand, b: Operand) -> VirtualReg:
        return self._binop(Opcode.AND, a, b)

    def or_(self, a: Operand, b: Operand) -> VirtualReg:
        return self._binop(Opcode.OR, a, b)

    def xor(self, a: Operand, b: Operand) -> VirtualReg:
        return self._binop(Opcode.XOR, a, b)

    def shl(self, a: Operand, b: Operand) -> VirtualReg:
        return self._binop(Opcode.SHL, a, b)

    def ashr(self, a: Operand, b: Operand) -> VirtualReg:
        return self._binop(Opcode.ASHR, a, b)

    def icmp(self, pred: str, a: Operand, b: Operand) -> VirtualReg:
        result = self.new_reg(INT32)
        self.emit(Opcode.ICMP, result, (a, b), pred=pred)
        return result

    def fcmp(self, pred: str, a: Operand, b: Operand) -> VirtualReg:
        result = self.new_reg(INT32)
        self.emit(Opcode.FCMP, result, (a, b), pred=pred)
        return result

    def cast(self, value: Operand, to_type: Type) -> VirtualReg:
        result = self.new_reg(to_type)
        self.emit(Opcode.CAST, result, (value,))
        return result

    def select(self, cond: Operand, a: Operand, b: Operand) -> VirtualReg:
        result = self.new_reg(a.type)
        self.emit(Opcode.SELECT, result, (cond, a, b))
        return result

    def copy(self, value: Operand) -> VirtualReg:
        result = self.new_reg(value.type)
        self.emit(Opcode.COPY, result, (value,))
        return result

    # -- memory ------------------------------------------------------------

    def alloca(self, type: Type, name: str = "") -> VirtualReg:
        result = self.new_reg(PointerType(type), name)
        self.emit(Opcode.ALLOCA, result, (), alloc_type=type)
        return result

    def load(self, ptr: Operand) -> VirtualReg:
        if not isinstance(ptr.type, PointerType):
            raise IRError(f"load from non-pointer {ptr!r}")
        result = self.new_reg(ptr.type.pointee)
        self.emit(Opcode.LOAD, result, (ptr,))
        return result

    def store(self, value: Operand, ptr: Operand) -> Instruction:
        if not isinstance(ptr.type, PointerType):
            raise IRError(f"store to non-pointer {ptr!r}")
        return self.emit(Opcode.STORE, None, (value, ptr))

    def ptradd(self, ptr: Operand, offset: Operand,
               result_type: Optional[Type] = None) -> VirtualReg:
        result = self.new_reg(result_type if result_type is not None else ptr.type)
        self.emit(Opcode.PTRADD, result, (ptr, offset))
        return result

    # -- control flow ---------------------------------------------------------

    def jump(self, target: BasicBlock) -> Instruction:
        return self.emit(Opcode.JUMP, None, (), targets=(target,))

    def cbranch(self, cond: Operand, then_bb: BasicBlock,
                else_bb: BasicBlock) -> Instruction:
        return self.emit(Opcode.CBR, None, (cond,), targets=(then_bb, else_bb))

    def ret(self, value: Optional[Operand] = None) -> Instruction:
        operands = (value,) if value is not None else ()
        return self.emit(Opcode.RET, None, operands)

    def call(self, callee: str, args: Sequence[Operand],
             return_type: Type) -> Optional[VirtualReg]:
        result = None
        if not return_type.is_void:
            result = self.new_reg(return_type)
        self.emit(Opcode.CALL, result, tuple(args), callee=callee)
        return result

    # -- loop markers ------------------------------------------------------

    def loop_enter(self, info: LoopInfo) -> Instruction:
        return self.emit(Opcode.LOOP_ENTER, None, (), loop_id=info.loop_id)

    def loop_next(self, info: LoopInfo) -> Instruction:
        return self.emit(Opcode.LOOP_NEXT, None, (), loop_id=info.loop_id)

    def loop_exit(self, info: LoopInfo) -> Instruction:
        return self.emit(Opcode.LOOP_EXIT, None, (), loop_id=info.loop_id)

    # -- constants ------------------------------------------------------------

    @staticmethod
    def const_int(value: int, type: Type = INT64) -> Constant:
        return Constant(int(value), type)

    @staticmethod
    def const_float(value: float, type: Type) -> Constant:
        return Constant(float(value), type)
