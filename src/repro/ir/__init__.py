"""Register-based intermediate representation.

The IR plays the role LLVM IR plays in the paper: the unit of dynamic
analysis is one IR instruction instance.  Programs are modules of functions;
functions are CFGs of basic blocks; instructions operate on typed virtual
registers and a flat byte-addressable memory.

Loop structure is explicit: the frontend emits ``loop.enter`` /
``loop.next`` / ``loop.exit`` marker instructions so the tracer can
attribute every dynamic instruction to a loop nest and an iteration vector
without rediscovering natural loops.
"""

from repro.ir.types import (
    IntType,
    FloatType,
    VoidType,
    PointerType,
    ArrayType,
    StructType,
    INT32,
    INT64,
    FLOAT,
    DOUBLE,
    VOID,
    sizeof,
)
from repro.ir.values import VirtualReg, Constant, GlobalRef, Operand
from repro.ir.instructions import Instruction, Opcode, OPCODE_INFO
from repro.ir.function import BasicBlock, Function, LoopInfo
from repro.ir.module import Module, GlobalVar
from repro.ir.builder import IRBuilder
from repro.ir.printer import print_module, print_function
from repro.ir.verifier import verify_module

__all__ = [
    "IntType",
    "FloatType",
    "VoidType",
    "PointerType",
    "ArrayType",
    "StructType",
    "INT32",
    "INT64",
    "FLOAT",
    "DOUBLE",
    "VOID",
    "sizeof",
    "VirtualReg",
    "Constant",
    "GlobalRef",
    "Operand",
    "Instruction",
    "Opcode",
    "OPCODE_INFO",
    "BasicBlock",
    "Function",
    "LoopInfo",
    "Module",
    "GlobalVar",
    "IRBuilder",
    "print_module",
    "print_function",
    "verify_module",
]
