"""Structural IR verifier.

Checks the invariants the interpreter and analyses rely on:

- every block ends in exactly one terminator, and terminators appear only
  at block ends;
- branch targets belong to the same function;
- registers are defined before use within a function (conservatively, by
  block order — the frontend only emits code in execution order);
- static ids are unique and registered with the module;
- CALL callees exist in the module or in the intrinsic set;
- loop markers reference loops declared in the module's loop table.
"""

from __future__ import annotations

from typing import Set

from repro.errors import IRError
from repro.ir.function import Function
from repro.ir.instructions import Opcode
from repro.ir.module import Module
from repro.ir.values import VirtualReg

#: Math functions the interpreter evaluates natively; calls to these are
#: legal even though no IR function defines them.
INTRINSICS = frozenset(
    {"exp", "sqrt", "fabs", "sin", "cos", "log", "pow", "floor", "fmin", "fmax"}
)


def verify_function(fn: Function, module: Module) -> None:
    if not fn.blocks:
        raise IRError(f"{fn.name}: function has no blocks")
    block_set = set(fn.blocks)
    defined: Set[int] = {r.index for r in fn.param_regs}
    seen_sids: Set[int] = set()

    for block in fn.blocks:
        if not block.instructions:
            raise IRError(f"{fn.name}/{block.name}: empty block")
        term = block.instructions[-1]
        if not term.is_terminator:
            raise IRError(f"{fn.name}/{block.name}: missing terminator")
        for i, instr in enumerate(block.instructions):
            if instr.is_terminator and i != len(block.instructions) - 1:
                raise IRError(
                    f"{fn.name}/{block.name}: terminator in mid-block"
                )
            if instr.sid in seen_sids:
                raise IRError(f"{fn.name}: duplicate sid {instr.sid}")
            seen_sids.add(instr.sid)
            if module.instruction(instr.sid) is not instr:
                raise IRError(
                    f"{fn.name}: sid {instr.sid} not registered with module"
                )
            for target in instr.targets:
                if target not in block_set:
                    raise IRError(
                        f"{fn.name}/{block.name}: branch to foreign block "
                        f"{target.name}"
                    )
            for op in instr.operands:
                if isinstance(op, VirtualReg) and op.index not in defined:
                    raise IRError(
                        f"{fn.name}/{block.name}: use of undefined register "
                        f"{op!r} in {instr!r}"
                    )
            if instr.result is not None:
                defined.add(instr.result.index)
            if instr.opcode == Opcode.CALL:
                if (
                    instr.callee not in module.functions
                    and instr.callee not in INTRINSICS
                ):
                    raise IRError(
                        f"{fn.name}: call to unknown function {instr.callee!r}"
                    )
            if instr.is_marker and instr.loop_id not in module.loops:
                raise IRError(
                    f"{fn.name}: marker references unknown loop {instr.loop_id}"
                )


def verify_module(module: Module) -> None:
    """Raise :class:`IRError` if any structural invariant is violated."""
    all_sids: Set[int] = set()
    for fn in module.functions.values():
        verify_function(fn, module)
        for instr in fn.all_instructions():
            if instr.sid in all_sids:
                raise IRError(f"sid {instr.sid} reused across functions")
            all_sids.add(instr.sid)
