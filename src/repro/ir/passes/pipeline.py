"""The standard pass pipeline: copy-prop -> const-fold -> DCE, to a
fixed point (bounded)."""

from __future__ import annotations

from repro.ir.module import Module
from repro.ir.passes.constfold import fold_module
from repro.ir.passes.copyprop import propagate_module
from repro.ir.passes.dce import dce_module

_MAX_ITERATIONS = 8


def optimize_module(module: Module) -> dict:
    """Run the pipeline to a fixed point; returns per-pass change counts.

    Note: removed instructions keep their sids registered with the
    module (sid lookup stays valid for any record already traced), but
    they no longer execute.
    """
    totals = {"copyprop": 0, "constfold": 0, "dce": 0}
    for _ in range(_MAX_ITERATIONS):
        changed = 0
        n = propagate_module(module)
        totals["copyprop"] += n
        changed += n
        n = fold_module(module)
        totals["constfold"] += n
        changed += n
        n = dce_module(module)
        totals["dce"] += n
        changed += n
        if changed == 0:
            break
    return totals
