"""Dead code elimination.

Removes *pure* instructions whose results are never used.  Stores,
calls, terminators, and loop markers always stay; loads are pure in this
memory model (no volatile semantics) and may be removed when dead.
"""

from __future__ import annotations

from typing import Set

from repro.ir.function import Function
from repro.ir.instructions import Opcode
from repro.ir.module import Module
from repro.ir.values import VirtualReg

#: Opcodes with observable effects (never removed).
_EFFECTFUL = frozenset({
    Opcode.STORE,
    Opcode.CALL,
    Opcode.JUMP,
    Opcode.CBR,
    Opcode.RET,
    Opcode.LOOP_ENTER,
    Opcode.LOOP_NEXT,
    Opcode.LOOP_EXIT,
})


def eliminate_dead_code(fn: Function) -> int:
    """Iteratively drop unused pure instructions; returns removal count."""
    removed_total = 0
    while True:
        used: Set[int] = set()
        for instr in fn.all_instructions():
            for op in instr.operands:
                if isinstance(op, VirtualReg):
                    used.add(op.index)
        removed = 0
        for block in fn.blocks:
            kept = []
            for instr in block.instructions:
                dead = (
                    instr.opcode not in _EFFECTFUL
                    and instr.result is not None
                    and instr.result.index not in used
                )
                if dead:
                    removed += 1
                else:
                    kept.append(instr)
            block.instructions = kept
        removed_total += removed
        if removed == 0:
            return removed_total


def dce_module(module: Module) -> int:
    return sum(eliminate_dead_code(fn) for fn in module.functions.values())
