"""IR-to-IR optimization passes.

The tracing pipeline deliberately analyzes ``-O0``-style IR (the paper's
instrumentation also ran on unoptimized IR so every memory access is
visible).  These passes exist for two purposes:

- they make the *interpreter* faster when analysis fidelity at the
  memory level is not needed (constant folding, copy propagation, dead
  code elimination);
- they are differential-testing targets: every pass must preserve the
  observable behaviour of every workload (verified in
  ``tests/test_passes.py``).

Passes never touch loads/stores or loop markers, so trace *structure*
changes only by dropping dead pure computation.
"""

from repro.ir.passes.constfold import fold_constants
from repro.ir.passes.copyprop import propagate_copies
from repro.ir.passes.dce import eliminate_dead_code
from repro.ir.passes.pipeline import optimize_module

__all__ = [
    "fold_constants",
    "propagate_copies",
    "eliminate_dead_code",
    "optimize_module",
]
