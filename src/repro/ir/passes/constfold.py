"""Constant folding.

Folds pure instructions whose operands are all constants into constant
operands of their users.  Arithmetic follows the interpreter's semantics
exactly (two's-complement wrapping, C division, binary32 rounding), so
folding can never change observable behaviour.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional

from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode
from repro.ir.module import Module
from repro.ir.types import FloatType, IntType, PointerType
from repro.ir.values import Constant, VirtualReg


def _wrap(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def _f32(x: float) -> float:
    return struct.unpack("f", struct.pack("f", x))[0]


def _cdiv(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


_INT_BINOPS = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << b,
    Opcode.ASHR: lambda a, b: a >> b,
}

_FP_BINOPS = {
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
}

_PREDS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


def _try_fold(instr: Instruction, env: Dict[int, Constant]) -> Optional[Constant]:
    """A Constant replacing ``instr``'s result, or None."""
    ops = []
    for op in instr.operands:
        if isinstance(op, Constant):
            ops.append(op)
        elif isinstance(op, VirtualReg) and op.index in env:
            ops.append(env[op.index])
        else:
            return None

    opc = instr.opcode
    rt = instr.result.type if instr.result is not None else None

    if opc in _INT_BINOPS and isinstance(rt, IntType):
        value = _wrap(_INT_BINOPS[opc](ops[0].value, ops[1].value), rt.bits)
        return Constant(value, rt)
    if opc in (Opcode.SDIV, Opcode.SREM) and isinstance(rt, IntType):
        if ops[1].value == 0:
            return None  # preserve the runtime fault
        q = _cdiv(ops[0].value, ops[1].value)
        value = q if opc is Opcode.SDIV else ops[0].value - q * ops[1].value
        return Constant(_wrap(value, rt.bits), rt)
    if opc in _FP_BINOPS and isinstance(rt, FloatType):
        value = _FP_BINOPS[opc](float(ops[0].value), float(ops[1].value))
        if rt.bits == 32:
            value = _f32(value)
        return Constant(value, rt)
    if opc is Opcode.FDIV and isinstance(rt, FloatType):
        if float(ops[1].value) == 0.0:
            return None
        value = float(ops[0].value) / float(ops[1].value)
        if rt.bits == 32:
            value = _f32(value)
        return Constant(value, rt)
    if opc in (Opcode.ICMP, Opcode.FCMP):
        return Constant(
            1 if _PREDS[instr.pred](ops[0].value, ops[1].value) else 0, rt
        )
    if opc is Opcode.COPY:
        return Constant(ops[0].value, rt)
    if opc is Opcode.CAST:
        value = ops[0].value
        if isinstance(rt, IntType):
            if isinstance(value, float):
                value = int(value)
            return Constant(_wrap(int(value), rt.bits), rt)
        if isinstance(rt, FloatType):
            value = float(value)
            if rt.bits == 32:
                value = _f32(value)
            return Constant(value, rt)
        if isinstance(rt, PointerType):
            return Constant(value, rt)
    if opc is Opcode.SELECT:
        return Constant(
            ops[1].value if ops[0].value else ops[2].value, rt
        )
    if opc is Opcode.PTRADD and isinstance(ops[0].type, IntType):
        # Folding real pointers is unsound (bases are runtime values),
        # but integer-typed address arithmetic can fold.
        return None
    return None


def fold_constants(fn: Function) -> int:
    """Fold constant computations in ``fn``; returns the fold count.

    Folded instructions are left in place (DCE removes them); their
    *uses* are rewritten to constants.
    """
    env: Dict[int, Constant] = {}
    folded = 0
    for block in fn.blocks:
        for instr in block.instructions:
            # Rewrite operands through the environment first.
            if env and instr.operands:
                new_ops = tuple(
                    env.get(op.index, op)
                    if isinstance(op, VirtualReg)
                    else op
                    for op in instr.operands
                )
                if new_ops != instr.operands:
                    instr.operands = new_ops
            if instr.result is None or instr.is_terminator:
                continue
            constant = _try_fold(instr, env)
            if constant is not None:
                env[instr.result.index] = constant
                folded += 1
    return folded


def fold_module(module: Module) -> int:
    return sum(fold_constants(fn) for fn in module.functions.values())
