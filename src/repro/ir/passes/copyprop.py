"""Copy propagation: forwards COPY sources to their users.

The lowering emits COPY only as value plumbing; forwarding it is always
sound because every virtual register is defined by exactly one static
instruction (the builder allocates a fresh register per emission).
"""

from __future__ import annotations

from typing import Dict

from repro.ir.function import Function
from repro.ir.instructions import Opcode
from repro.ir.module import Module
from repro.ir.values import Operand, VirtualReg


def propagate_copies(fn: Function) -> int:
    """Rewrite uses of COPY results to the copied operand; returns the
    number of rewritten operand slots."""
    forward: Dict[int, Operand] = {}
    for instr in fn.all_instructions():
        if instr.opcode is Opcode.COPY and instr.result is not None:
            src = instr.operands[0]
            # Chase chains of copies.
            while isinstance(src, VirtualReg) and src.index in forward:
                src = forward[src.index]
            forward[instr.result.index] = src
    if not forward:
        return 0
    rewritten = 0
    for instr in fn.all_instructions():
        if not instr.operands:
            continue
        new_ops = []
        changed = False
        for op in instr.operands:
            if isinstance(op, VirtualReg) and op.index in forward:
                new_ops.append(forward[op.index])
                changed = True
                rewritten += 1
            else:
                new_ops.append(op)
        if changed:
            instr.operands = tuple(new_ops)
    return rewritten


def propagate_module(module: Module) -> int:
    return sum(propagate_copies(fn) for fn in module.functions.values())
