"""Functions, basic blocks, and loop metadata."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import IRError
from repro.ir.instructions import Instruction
from repro.ir.types import Type
from repro.ir.values import VirtualReg


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    __slots__ = ("name", "instructions")

    def __init__(self, name: str):
        self.name = name
        self.instructions: List[Instruction] = []

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def append(self, instr: Instruction) -> Instruction:
        if self.terminator is not None:
            raise IRError(f"block {self.name} already terminated")
        self.instructions.append(instr)
        return instr

    def __repr__(self) -> str:
        return f"<block {self.name} ({len(self.instructions)} instrs)>"


class LoopInfo:
    """Static description of one source-level loop.

    ``loop_id`` is module-unique; the tracer uses the loop marker
    pseudo-instructions to attribute dynamic instructions to loops.
    ``header_line`` identifies the loop in reports, mirroring the paper's
    "file.c : line" loop naming in Table 1.
    """

    __slots__ = ("loop_id", "function", "header_line", "depth", "parent_id", "label")

    def __init__(
        self,
        loop_id: int,
        function: str,
        header_line: int,
        depth: int,
        parent_id: Optional[int] = None,
        label: str = "",
    ):
        self.loop_id = loop_id
        self.function = function
        self.header_line = header_line
        self.depth = depth
        self.parent_id = parent_id
        self.label = label

    @property
    def name(self) -> str:
        """Human-readable loop name, e.g. ``main:12`` (function:line)."""
        if self.label:
            return self.label
        return f"{self.function}:{self.header_line}"

    def __repr__(self) -> str:
        return f"<loop {self.loop_id} {self.name} depth={self.depth}>"


class Function:
    """A function: ordered basic blocks plus parameter registers."""

    def __init__(
        self,
        name: str,
        params: Sequence[Tuple[str, Type]],
        return_type: Type,
    ):
        self.name = name
        self.param_regs: List[VirtualReg] = []
        self.param_types = [t for _, t in params]
        self.param_names = [n for n, _ in params]
        self.return_type = return_type
        self.blocks: List[BasicBlock] = []
        self._blocks_by_name: Dict[str, BasicBlock] = {}
        self.num_regs = 0  # filled by the builder

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, name: str) -> BasicBlock:
        if name in self._blocks_by_name:
            raise IRError(f"duplicate block name {name!r} in {self.name}")
        block = BasicBlock(name)
        self.blocks.append(block)
        self._blocks_by_name[name] = block
        return block

    def block(self, name: str) -> BasicBlock:
        try:
            return self._blocks_by_name[name]
        except KeyError:
            raise IRError(f"no block {name!r} in {self.name}") from None

    def all_instructions(self):
        """Iterate instructions in block order."""
        for block in self.blocks:
            yield from block.instructions

    def __repr__(self) -> str:
        return f"<function {self.name} ({len(self.blocks)} blocks)>"
