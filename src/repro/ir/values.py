"""IR values: virtual registers, constants, and references to globals.

Instruction operands are any of these three.  Virtual registers are
function-local and single-assignment per dynamic execution path in the code
the frontend emits; the interpreter simply treats them as frame slots.
"""

from __future__ import annotations

from typing import Union

from repro.ir.types import Type


class VirtualReg:
    """A typed virtual register, unique within its function."""

    __slots__ = ("index", "type", "name")

    def __init__(self, index: int, type: Type, name: str = ""):
        self.index = index
        self.type = type
        self.name = name

    def __repr__(self) -> str:
        if self.name:
            return f"%{self.index}.{self.name}"
        return f"%{self.index}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VirtualReg) and other.index == self.index

    def __hash__(self) -> int:
        return hash(("reg", self.index))


class Constant:
    """An immediate constant operand (int, float, or null pointer)."""

    __slots__ = ("value", "type")

    def __init__(self, value, type: Type):
        self.value = value
        self.type = type

    def __repr__(self) -> str:
        return f"{self.value}:{self.type!r}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.value == self.value
            and other.type == self.type
        )

    def __hash__(self) -> int:
        return hash(("const", self.value, self.type))


class GlobalRef:
    """A reference to a module-level global variable (by name).

    Evaluates to the global's base address at run time.
    """

    __slots__ = ("name", "type")

    def __init__(self, name: str, type: Type):
        self.name = name
        self.type = type  # PointerType to the global's value type

    def __repr__(self) -> str:
        return f"@{self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GlobalRef) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("global", self.name))


Operand = Union[VirtualReg, Constant, GlobalRef]
