"""Additional Table-1 rows mapped onto the modeled kernels.

The paper's Table 1 has multiple rows per benchmark (several hot loops
each).  Where loops of a benchmark share the structure the paper
describes, one modeled kernel covers several rows — these registrations
attach the remaining paper rows to the appropriate loop of an existing
model, with the paper's reported values for the side-by-side print.
"""

from repro.workloads.spec.table1 import Table1Row, add_row

# -- 410.bwaves ------------------------------------------------------------

add_row(Table1Row(
    benchmark="410.bwaves",
    paper_loop="block_solver.f : 176",
    workload="bwaves_block_solver",
    loop="bs_i",
    paper=(100.0, 8.3, 100.0, 5.0, 0.0, 0.0),
    expect_packed="high",
    expect_unit="high",
    expect_nonunit="zero",
))

# -- 433.milc (gauge sector: same AoS su3 algebra at every site) ------------

add_row(Table1Row(
    benchmark="433.milc",
    paper_loop="gauge_stuff.c : 258",
    workload="milc_su3mv",
    loop="sites_loop",
    paper=(0.0, 10453.4, 36.2, 10427.4, 49.7, 3.3),
    expect_packed="zero",
    expect_unit="any",
    expect_nonunit="present",
    note="Gauge-force su3 products share the quark kernel's structure.",
))

add_row(Table1Row(
    benchmark="433.milc",
    paper_loop="path_product.c : 49",
    workload="milc_su3mv",
    loop="sites_loop",
    paper=(0.0, 73316.6, 36.4, 69441.5, 63.6, 3.2),
    expect_packed="zero",
    expect_unit="any",
    expect_nonunit="present",
))

# -- 436.cactusADM ----------------------------------------------------------

add_row(Table1Row(
    benchmark="436.cactusADM",
    paper_loop="StaggeredLeapfrog2.F : 366",
    workload="cactus_leapfrog",
    loop="lf_i",
    paper=(96.9, 78.0, 100.0, 78.0, 0.0, 0.0),
    expect_packed="high",
    expect_unit="high",
    expect_nonunit="zero",
))

# -- 437.leslie3d -----------------------------------------------------------

add_row(Table1Row(
    benchmark="437.leslie3d",
    paper_loop="tml.f : 889",
    workload="leslie3d_flux",
    loop="fl_i",
    paper=(99.2, 7434.2, 99.9, 178.4, 0.0, 0.0),
    expect_packed="high",
    expect_unit="high",
    expect_nonunit="zero",
))

add_row(Table1Row(
    benchmark="437.leslie3d",
    paper_loop="tml.f : 3569",
    workload="leslie3d_flux",
    loop="fl_k",
    paper=(98.6, 8100.0, 100.0, 90.0, 0.0, 0.0),
    expect_packed="high",
    expect_unit="high",
    expect_nonunit="zero",
))

# -- 444.namd ---------------------------------------------------------------

add_row(Table1Row(
    benchmark="444.namd",
    paper_loop="ComputeList.C : 75",
    workload="namd_pairlist",
    loop="pair_k",
    paper=(0.0, 313.3, 93.3, 295.4, 6.6, 7.8),
    expect_packed="zero",
    expect_unit="high",
    expect_nonunit="any",
    note="Pairlist construction shares the force loop's shape.",
))

# -- 447.dealII -------------------------------------------------------------

add_row(Table1Row(
    benchmark="447.dealII",
    paper_loop="step-14.cc : 780",
    workload="dealii_assembly",
    loop="asm_c",
    paper=(0.0, 27.0, 66.7, 27.0, 33.3, 27.0),
    expect_packed="zero",
    expect_unit="moderate",
    expect_nonunit="any",
))

# -- 450.soplex -------------------------------------------------------------

add_row(Table1Row(
    benchmark="450.soplex",
    paper_loop="spxsolve.cc : 126",
    workload="soplex_sparse_update",
    loop="upd_k",
    paper=(0.0, 384.3, 92.3, 25.6, 3.5, 2.1),
    expect_packed="zero",
    expect_unit="moderate",
    expect_nonunit="any",
))

# -- 453.povray -------------------------------------------------------------

add_row(Table1Row(
    benchmark="453.povray",
    paper_loop="lighting.cpp : 600",
    workload="povray_bbox",
    loop="walk",
    paper=(1.0, 13.1, 65.4, 13.9, 28.1, 2.0),
    expect_packed="zero",
    expect_unit="moderate",
    expect_nonunit="any",
    note="Lighting shares the intersection loops' irregular shape.",
))

# -- 454.calculix -----------------------------------------------------------

add_row(Table1Row(
    benchmark="454.calculix",
    paper_loop="FrontMtx_update.c : 207",
    workload="calculix_frontmtx",
    loop="fm_i",
    paper=(16.4, 774.0, 96.4, 11.4, 3.1, 9.4),
    expect_packed="zero",
    expect_unit="high",
    expect_nonunit="any",
))

# -- 459.GemsFDTD -----------------------------------------------------------

add_row(Table1Row(
    benchmark="459.GemsFDTD",
    paper_loop="update.F90 : 242",
    workload="gemsfdtd_update",
    loop="upd_i",
    paper=(97.3, 200.0, 100.0, 200.0, 0.0, 0.0),
    expect_packed="high",
    expect_unit="high",
    expect_nonunit="zero",
))

# -- 465.tonto --------------------------------------------------------------

add_row(Table1Row(
    benchmark="465.tonto",
    paper_loop="mol.F90 : 11659",
    workload="tonto_integrals",
    loop="shifted_k",
    paper=(19.5, 266.6, 97.2, 31.6, 1.0, 4.4),
    expect_packed="zero",
    expect_unit="high",
    expect_nonunit="any",
    note="Shifted accumulation: refused statically, widely independent "
         "dynamically (short chains of period `shift`).",
))

# -- 481.wrf ----------------------------------------------------------------

add_row(Table1Row(
    benchmark="481.wrf",
    paper_loop="solve_em.F90 : 1258",
    workload="wrf_solve_em",
    loop="em_i",
    paper=(89.6, 9887.1, 93.6, 89.1, 6.4, 28.5),
    expect_packed="high",
    expect_unit="high",
    expect_nonunit="any",
))

# -- 482.sphinx3 ------------------------------------------------------------

add_row(Table1Row(
    benchmark="482.sphinx3",
    paper_loop="vector.c : 521",
    workload="sphinx3_subvq",
    loop="vq_d",
    paper=(86.1, 3.3, 75.0, 13.0, 0.0, 0.0),
    expect_packed="high",
    expect_unit="moderate",
    expect_nonunit="any",
    note="The §4.1 reduction callout row: packed exceeds the dynamic "
         "unit share because icc vectorizes the accumulation.",
))
