"""435.gromacs — molecular dynamics.

The innerf.f nonbonded kernels walk an indirection array (``jjnr``), so
icc reports 0-4.4% packed, while the dynamic analysis shows the scalar
force arithmetic to be widely independent (unit 60-64%, small partitions
bounded by the pair count and by the reduction chains, §4.4).

Modeled by the ``gromacs_inner`` case-study kernel.
"""

from repro.workloads.spec.table1 import Table1Row, add_row

add_row(Table1Row(
    benchmark="435.gromacs",
    paper_loop="innerf.f : 3960",
    workload="gromacs_inner",
    loop="force_k",
    paper=(60.4, 4.0, 60.3, 12.0, 21.5, 2.0),
    expect_packed="zero",
    expect_unit="high",
    expect_nonunit="any",
    note="Paper's Percent-Cycles column reads 60.4 for this row; its "
         "packed column is 4.4% — effectively unvectorized. §4.4 case "
         "study (Listing 9).",
))
