"""482.sphinx3 — speech recognition.

The vector-quantization / Gaussian-mixture loops compute squared-
distance reductions ``d += diff * diff``: icc vectorizes the reduction
(68-86% packed), while the dynamic analysis deliberately reports the
accumulation chain as non-vectorizable — this is the paper's explicitly
called-out case where Percent Packed *exceeds* Percent Vec. Ops (§4.1),
and the reduction-relaxation extension (ablation 1) recovers it.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register
from repro.workloads.spec.table1 import Table1Row, add_row


def subvq_source(codebook: int = 48, dim: int = 16) -> str:
    return f"""
// Model of 482.sphinx3 subvq.c:456 — squared-distance scoring.
double mean[{codebook}][{dim}];
double feat[{dim}];
double score[{codebook}];

int main() {{
  int c, d;
  for (c = 0; c < {codebook}; c++)
    for (d = 0; d < {dim}; d++)
      mean[c][d] = 0.01 * (double)(c * 3 + d);
  for (d = 0; d < {dim}; d++)
    feat[d] = 0.05 * (double)(d + 1);
  vq_c: for (c = 0; c < {codebook}; c++) {{
    double dist = 0.0;
    vq_d: for (d = 0; d < {dim}; d++) {{
      double diff = feat[d] - mean[c][d];
      dist += diff * diff;
    }}
    score[c] = dist;
  }}
  return 0;
}}
"""


register(Workload(
    name="sphinx3_subvq",
    category="spec",
    source_fn=subvq_source,
    default_params={"codebook": 48, "dim": 16},
    analyze_loops=["vq_c", "vq_d"],
    description="sphinx3 VQ distance scoring (reduction inner loop).",
    models="482.sphinx3 subvq.c:456 / vector.c:521.",
))

add_row(Table1Row(
    benchmark="482.sphinx3",
    paper_loop="subvq.c : 456",
    workload="sphinx3_subvq",
    loop="vq_c",
    paper=(75.0, 19154.8, 75.5, 15360.0, 24.5, 2048.0),
    expect_packed="high",
    expect_unit="moderate",
    expect_nonunit="any",
    note="Packed exceeds unit %VecOps because icc vectorizes the "
         "reduction the dynamic analysis reports as a chain (§4.1).",
))
