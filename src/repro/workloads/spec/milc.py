"""433.milc — lattice QCD.

The hot loops (quark_stuff.c, gauge_stuff.c) all apply small complex
su3 matrix/vector operations at every lattice site through an
array-of-structures layout: icc packs nothing (0% across all eight rows),
the dynamic analysis finds enormous concurrency across sites, and a
substantial share of the operations group at fixed *non-unit* stride —
the signature that a data-layout transformation pays off (§4.4).

Modeled by the ``milc_su3mv`` case-study kernel.
"""

from repro.workloads.spec.table1 import Table1Row, add_row

add_row(Table1Row(
    benchmark="433.milc",
    paper_loop="quark_stuff.c : 1452",
    workload="milc_su3mv",
    loop="sites_loop",
    paper=(0.0, 20736.0, 36.4, 20736.0, 63.6, 502.3),
    expect_packed="zero",
    expect_unit="any",
    expect_nonunit="present",
    note="AoS su3 mat-vec; §4.4 case study (Listing 8).",
))

add_row(Table1Row(
    benchmark="433.milc",
    paper_loop="quark_stuff.c : 566",
    workload="milc_su3mv",
    loop="sites_loop",
    paper=(0.0, 23687.7, 88.3, 11.4, 7.5, 4.2),
    expect_packed="zero",
    expect_unit="any",
    expect_nonunit="present",
    note="Same su3 kernel family; one model stands in for the group.",
))
