"""465.tonto — quantum chemistry (Fortran 95).

mol.F90:5565 is mostly packed (80.4%) with near-total unit potential;
mol.F90:11659 is only 19.5% packed because the integral loop mixes a
vectorizable part with accumulations into index-shifted targets.
Modeled as two loops: a packed dense scaling loop and a shifted-update
loop icc refuses (carried dependence) whose instances are widely
independent dynamically.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register
from repro.workloads.spec.table1 import Table1Row, add_row


def integrals_source(n: int = 64, shift: int = 3) -> str:
    return f"""
// Model of 465.tonto mol.F90 integral loops.
double w[{n}];
double g[{n}];
double acc[{n + 8}];

int main() {{
  int k;
  for (k = 0; k < {n}; k++) {{
    w[k] = 0.01 * (double)(k + 1);
    g[k] = 0.002 * (double)(3 * k + 2);
  }}
  for (k = 0; k < {n} + 8; k++)
    acc[k] = 0.0;
  // Packed part: dense elementwise contraction (mol.F90:5565).
  dense_k: for (k = 0; k < {n}; k++) {{
    g[k] = g[k] * w[k] + 0.5 * w[k];
  }}
  // Refused part: shifted accumulation looks loop-carried to the
  // compiler (mol.F90:11659 flavour).
  shifted_k: for (k = 0; k < {n}; k++) {{
    acc[k + {shift}] = acc[k] + g[k];
  }}
  return 0;
}}
"""


register(Workload(
    name="tonto_integrals",
    category="spec",
    source_fn=integrals_source,
    default_params={"n": 64, "shift": 3},
    analyze_loops=["dense_k", "shifted_k"],
    description="tonto integral loops: packed dense + refused shifted.",
    models="465.tonto mol.F90:5565/11659.",
))

add_row(Table1Row(
    benchmark="465.tonto",
    paper_loop="mol.F90 : 5565",
    workload="tonto_integrals",
    loop="dense_k",
    paper=(80.4, 50779.4, 99.2, 150.7, 0.3, 2.4),
    expect_packed="high",
    expect_unit="high",
    expect_nonunit="any",
))
