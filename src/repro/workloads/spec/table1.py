"""The Table-1 row registry: modeled loops and the paper's reported values.

Each :class:`Table1Row` ties one paper row (benchmark, source loop) to the
workload/loop that models it here, together with the paper's numbers and
the *shape* expectations the reproduction must meet (who is packed, where
the dynamic potential is).  Rows register themselves from the per-
benchmark modules at import time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Table1Row:
    """One modeled row of Table 1 (or Table 2 for the kernels)."""

    benchmark: str           # e.g. "433.milc"
    paper_loop: str          # e.g. "quark_stuff.c : 1452"
    workload: str            # registered workload name
    loop: str                # loop label inside the workload
    #: the paper's reported values:
    #: (percent_packed, avg_concur, unit_pct, unit_sz, nonunit_pct, nonunit_sz)
    paper: Tuple[float, float, float, float, float, float]
    #: shape expectations for tests/benches:
    expect_packed: str = "any"     # "zero" | "partial" | "high" | "any"
    expect_unit: str = "any"       # "zero" | "low" | "moderate" | "high"
    expect_nonunit: str = "any"    # "zero" | "present" | "dominant"
    note: str = ""


TABLE1_ROWS: Dict[str, Table1Row] = {}


def add_row(row: Table1Row) -> Table1Row:
    key = f"{row.benchmark}/{row.paper_loop}"
    if key in TABLE1_ROWS:
        raise ValueError(f"duplicate Table-1 row {key}")
    TABLE1_ROWS[key] = row
    return row


_PACKED_LEVELS = {"zero": 0, "partial": 1, "high": 2}
_UNIT_LEVELS = {"zero": 0, "low": 1, "moderate": 2, "high": 3}
_NONUNIT_LEVELS = {"zero": 0, "present": 1, "dominant": 2}


def _meets(measured: str, expected: str, levels: Dict[str, int]) -> bool:
    """Expectation semantics: "any" always passes; "zero" requires the
    measured band to be exactly zero; any other band is a *minimum*."""
    if expected == "any":
        return True
    if expected == "zero":
        return measured == "zero"
    return levels[measured] >= levels[expected]


def row_matches(row: Table1Row, percent_packed: float, unit_pct: float,
                nonunit_pct: float) -> bool:
    """Does a measured loop meet the row's shape expectations?"""
    return (
        _meets(classify_packed(percent_packed), row.expect_packed,
               _PACKED_LEVELS)
        and _meets(classify_unit(unit_pct), row.expect_unit, _UNIT_LEVELS)
        and _meets(classify_nonunit(nonunit_pct), row.expect_nonunit,
                   _NONUNIT_LEVELS)
    )


def classify_packed(pct: float) -> str:
    if pct < 5.0:
        return "zero"
    if pct < 60.0:
        return "partial"
    return "high"


def classify_unit(pct: float) -> str:
    if pct < 5.0:
        return "zero"
    if pct < 30.0:
        return "low"
    if pct < 60.0:
        return "moderate"
    return "high"


def classify_nonunit(pct: float) -> str:
    if pct < 5.0:
        return "zero"
    if pct < 50.0:
        return "present"
    return "dominant"
