"""437.leslie3d — computational fluid dynamics (LES).

The tml.f flux loops are clean stride-1 triple nests; icc packs nearly
everything (98.5-99.2% packed) and the dynamic analysis reports unit-
stride potential of ~100% with very large partitions — another agreement
row.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register
from repro.workloads.spec.table1 import Table1Row, add_row


def flux_source(nx: int = 18, ny: int = 6, nz: int = 4) -> str:
    return f"""
// Model of 437.leslie3d tml.f flux computation: stride-1 differences
// of fluxes with interpolated face values.
double q[{nz}][{ny}][{nx}];
double flux[{nz}][{ny}][{nx}];
double dq[{nz}][{ny}][{nx}];

int main() {{
  int i, j, k;
  for (k = 0; k < {nz}; k++)
    for (j = 0; j < {ny}; j++)
      for (i = 0; i < {nx}; i++)
        q[k][j][i] = 0.01 * (double)(k * 31 + j * 7 + i) + 1.0;
  fl_k: for (k = 0; k < {nz}; k++) {{
    for (j = 0; j < {ny}; j++) {{
      fl_i: for (i = 1; i < {nx} - 2; i++) {{
        flux[k][j][i] = 0.5625 * (q[k][j][i] + q[k][j][i+1])
                      - 0.0625 * (q[k][j][i-1] + q[k][j][i+2]);
      }}
      df_i: for (i = 2; i < {nx} - 2; i++) {{
        dq[k][j][i] = flux[k][j][i] - flux[k][j][i-1];
      }}
    }}
  }}
  return 0;
}}
"""


register(Workload(
    name="leslie3d_flux",
    category="spec",
    source_fn=flux_source,
    default_params={"nx": 18, "ny": 6, "nz": 4},
    analyze_loops=["fl_k", "fl_i"],
    description="leslie3d flux interpolation/differencing loops.",
    models="437.leslie3d tml.f:522/889/1269/3569.",
))

add_row(Table1Row(
    benchmark="437.leslie3d",
    paper_loop="tml.f : 522",
    workload="leslie3d_flux",
    loop="fl_k",
    paper=(98.5, 8805.5, 100.0, 158.3, 0.0, 0.0),
    expect_packed="high",
    expect_unit="high",
    expect_nonunit="zero",
))
