"""436.cactusADM — numerical relativity (staggered leapfrog).

StaggeredLeapfrog2.F:342/366 are long, branch-free, stride-1 stencil
updates over 3-D grids: icc packs essentially everything (96.9-100%
packed) and the dynamic analysis agrees (unit 100%, vector size = the
grid line length).  This is a row where the static compiler already wins;
the reproduction must show *agreement*, not a gap.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register
from repro.workloads.spec.table1 import Table1Row, add_row


def leapfrog_source(nx: int = 20, ny: int = 6, nz: int = 4) -> str:
    return f"""
// Model of 436.cactusADM StaggeredLeapfrog2: branch-free leapfrog
// update of the extrinsic curvature, stride-1 innermost.
double adm_kxx[{nz}][{ny}][{nx}];
double adm_kxx_p[{nz}][{ny}][{nx}];
double adm_kxx_pp[{nz}][{ny}][{nx}];
double src[{nz}][{ny}][{nx}];

int main() {{
  int i, j, k;
  for (k = 0; k < {nz}; k++)
    for (j = 0; j < {ny}; j++)
      for (i = 0; i < {nx}; i++) {{
        adm_kxx_p[k][j][i] = 0.01 * (double)(k + j + i);
        adm_kxx_pp[k][j][i] = 0.005 * (double)(k * j + i);
        src[k][j][i] = 0.001 * (double)(k + j * i);
      }}
  lf_k: for (k = 1; k < {nz} - 1; k++) {{
    for (j = 1; j < {ny} - 1; j++) {{
      lf_i: for (i = 1; i < {nx} - 1; i++) {{
        adm_kxx[k][j][i] =
            2.0 * adm_kxx_p[k][j][i] - adm_kxx_pp[k][j][i]
          + 0.25 * (adm_kxx_p[k][j][i-1] + adm_kxx_p[k][j][i+1])
          + 0.25 * (adm_kxx_p[k][j-1][i] + adm_kxx_p[k][j+1][i])
          + 0.5 * src[k][j][i];
      }}
    }}
  }}
  return 0;
}}
"""


register(Workload(
    name="cactus_leapfrog",
    category="spec",
    source_fn=leapfrog_source,
    default_params={"nx": 20, "ny": 6, "nz": 4},
    analyze_loops=["lf_k", "lf_i"],
    description="cactusADM staggered-leapfrog stencil update.",
    models="436.cactusADM StaggeredLeapfrog2.F:342/366.",
))

add_row(Table1Row(
    benchmark="436.cactusADM",
    paper_loop="StaggeredLeapfrog2.F : 342",
    workload="cactus_leapfrog",
    loop="lf_k",
    paper=(100.0, 80.0, 100.0, 80.0, 0.0, 0.0),
    expect_packed="high",
    expect_unit="high",
    expect_nonunit="zero",
))
