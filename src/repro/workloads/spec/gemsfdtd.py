"""459.GemsFDTD — computational electromagnetics (FDTD).

update.F90:108/242 are the H-field curl updates: perfectly regular
stride-1 3-D loops, 97.3-97.4% packed, 100% unit potential with vector
size equal to the line length (200-201) — an agreement row.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register
from repro.workloads.spec.table1 import Table1Row, add_row


def update_source(nx: int = 20, ny: int = 6, nz: int = 4) -> str:
    return f"""
// Model of 459.GemsFDTD update.F90:108 — H-field curl update.
double hx[{nz}][{ny}][{nx}];
double ey[{nz}][{ny}][{nx}];
double ez[{nz}][{ny}][{nx}];

int main() {{
  int i, j, k;
  for (k = 0; k < {nz}; k++)
    for (j = 0; j < {ny}; j++)
      for (i = 0; i < {nx}; i++) {{
        ey[k][j][i] = 0.01 * (double)(k * 11 + j * 5 + i);
        ez[k][j][i] = 0.02 * (double)(k + j + i);
        hx[k][j][i] = 0.0;
      }}
  upd_k: for (k = 0; k < {nz} - 1; k++) {{
    for (j = 0; j < {ny} - 1; j++) {{
      upd_i: for (i = 0; i < {nx}; i++) {{
        hx[k][j][i] = hx[k][j][i]
          + 0.5 * (ey[k+1][j][i] - ey[k][j][i])
          - 0.5 * (ez[k][j+1][i] - ez[k][j][i]);
      }}
    }}
  }}
  return 0;
}}
"""


register(Workload(
    name="gemsfdtd_update",
    category="spec",
    source_fn=update_source,
    default_params={"nx": 20, "ny": 6, "nz": 4},
    analyze_loops=["upd_k", "upd_i"],
    description="GemsFDTD H-field curl update (stride-1).",
    models="459.GemsFDTD update.F90:108/242.",
))

add_row(Table1Row(
    benchmark="459.GemsFDTD",
    paper_loop="update.F90 : 108",
    workload="gemsfdtd_update",
    loop="upd_k",
    paper=(97.4, 201.0, 100.0, 201.0, 0.0, 0.0),
    expect_packed="high",
    expect_unit="high",
    expect_nonunit="zero",
))
