"""434.zeusmp — astrophysical magnetohydrodynamics.

advx3.f:637 is a 3-D advection sweep: part of the computation is
stride-1 (packed by icc — 35% packed), while interpolation along the
sweep direction accesses the *outer* dimension (fixed non-unit stride).
The paper reports unit 74.3% and non-unit 16.6% — a mixed row.  Modeled
as one nest whose first statement is stride-1 and whose second statement
walks dimension j (stride nx elements).
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register
from repro.workloads.spec.table1 import Table1Row, add_row


def advx3_source(nx: int = 16, ny: int = 10, nz: int = 4) -> str:
    return f"""
// Model of 434.zeusmp advx3.f:637 — advection with a stride-1 flux
// statement and a dimension-j interpolation (non-unit stride).
double d[{nz}][{ny}][{nx}];
double v[{nz}][{ny}][{nx}];
double dflux[{nz}][{ny}][{nx}];
double dint[{nz}][{ny}][{nx}];

int main() {{
  int i, j, k;
  for (k = 0; k < {nz}; k++)
    for (j = 0; j < {ny}; j++)
      for (i = 0; i < {nx}; i++) {{
        d[k][j][i] = 0.01 * (double)(k * 13 + j * 3 + i) + 1.0;
        v[k][j][i] = 0.001 * (double)(k + j + i);
      }}
  adv_k: for (k = 0; k < {nz}; k++) {{
    for (j = 1; j < {ny} - 1; j++) {{
      adv_flux: for (i = 0; i < {nx}; i++) {{
        dflux[k][j][i] = d[k][j][i] * v[k][j][i];
      }}
      adv_intp: for (i = 0; i < {nx}; i++) {{
        dint[k][j][i] = 0.5 * (d[k][j-1][i] + d[k][j+1][i])
                      - 0.25 * dflux[k][j][i];
      }}
    }}
  }}
  return 0;
}}
"""


register(Workload(
    name="zeusmp_advx3",
    category="spec",
    source_fn=advx3_source,
    default_params={"nx": 16, "ny": 10, "nz": 4},
    analyze_loops=["adv_k"],
    description="zeusmp 3-D advection sweep (mixed stride).",
    models="434.zeusmp advx3.f:637.",
))

add_row(Table1Row(
    benchmark="434.zeusmp",
    paper_loop="advx3.f : 637",
    workload="zeusmp_advx3",
    loop="adv_k",
    paper=(35.0, 66613.9, 74.3, 442.1, 16.6, 16.0),
    expect_packed="high",
    expect_unit="high",
    expect_nonunit="any",
    note="Both model statements are vectorizable here, so measured "
         "packed lands high; the paper's partial figure reflects other "
         "statements in the real loop.",
))
