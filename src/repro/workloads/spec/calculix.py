"""454.calculix — structural mechanics (finite elements).

Two contrasting rows are modeled:

- ``e_c3d.f : 675`` — element stiffness accumulation: clean stride-1
  Fortran loops icc packs (69.7% packed in the paper, near-zero leftover
  potential).
- ``FrontMtx_update.c : 38`` — frontal-matrix rank update written in C
  with pointer arithmetic: icc packs 14-16%, while the dynamic analysis
  reports 91-96% unit-stride potential.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register
from repro.workloads.spec.table1 import Table1Row, add_row


def e_c3d_source(nelem: int = 24, nq: int = 8) -> str:
    return f"""
// Model of 454.calculix e_c3d.f:675 — element stiffness, stride-1.
double s[{nelem}][{nq}];
double w[{nelem}][{nq}];
double out[{nelem}][{nq}];

int main() {{
  int e, q;
  for (e = 0; e < {nelem}; e++)
    for (q = 0; q < {nq}; q++) {{
      s[e][q] = 0.01 * (double)(e + q) + 0.2;
      w[e][q] = 0.05 * (double)(q + 1);
    }}
  ec3d_e: for (e = 0; e < {nelem}; e++) {{
    ec3d_q: for (q = 0; q < {nq}; q++) {{
      out[e][q] = s[e][q] * w[e][q] + s[e][q] * 0.5;
    }}
  }}
  return 0;
}}
"""


def frontmtx_source(front: int = 24) -> str:
    return f"""
// Model of 454.calculix FrontMtx_update.c:38 — rank-1 frontal update
// through pointers (icc must assume aliasing).
double mtx[{front * front}];
double col[{front}];
double row[{front}];

void rank1_update(double *a, double *x, double *y, int n) {{
  int i, j;
  fm_i: for (i = 0; i < n; i++) {{
    fm_j: for (j = 0; j < n; j++) {{
      a[i * n + j] = a[i * n + j] - x[i] * y[j];
    }}
  }}
}}

int main() {{
  int i;
  for (i = 0; i < {front * front}; i++)
    mtx[i] = 0.001 * (double)i;
  for (i = 0; i < {front}; i++) {{
    col[i] = 0.01 * (double)(i + 1);
    row[i] = 0.02 * (double)(i + 2);
  }}
  rank1_update(mtx, col, row, {front});
  return 0;
}}
"""


register(Workload(
    name="calculix_e_c3d",
    category="spec",
    source_fn=e_c3d_source,
    default_params={"nelem": 24, "nq": 8},
    analyze_loops=["ec3d_e"],
    description="calculix element stiffness (stride-1, packed by icc).",
    models="454.calculix e_c3d.f:675.",
))

register(Workload(
    name="calculix_frontmtx",
    category="spec",
    source_fn=frontmtx_source,
    default_params={"front": 24},
    analyze_loops=["fm_i", "fm_j"],
    description="calculix frontal-matrix rank-1 update via pointers.",
    models="454.calculix FrontMtx_update.c:38/207.",
))

add_row(Table1Row(
    benchmark="454.calculix",
    paper_loop="e_c3d.f : 675",
    workload="calculix_e_c3d",
    loop="ec3d_e",
    paper=(69.7, 35.6, 100.0, 11.4, 0.0, 0.0),
    expect_packed="high",
    expect_unit="high",
    expect_nonunit="zero",
))

add_row(Table1Row(
    benchmark="454.calculix",
    paper_loop="FrontMtx_update.c : 38",
    workload="calculix_frontmtx",
    loop="fm_j",
    paper=(14.0, 1116.3, 96.7, 12.9, 2.6, 4.7),
    expect_packed="zero",
    expect_unit="high",
    expect_nonunit="any",
))
