"""481.wrf — weather research and forecasting.

The solve_em.F90 dynamics loops are regular 3-D stride-1 updates with
high packed rates (79-90%) and enormous dynamic concurrency — agreement
rows.  Modeled as a tendency-update triple nest.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register
from repro.workloads.spec.table1 import Table1Row, add_row


def solve_em_source(nx: int = 18, ny: int = 6, nz: int = 4) -> str:
    return f"""
// Model of 481.wrf solve_em.F90 tendency updates.
double t[{nz}][{ny}][{nx}];
double u[{nz}][{ny}][{nx}];
double tend[{nz}][{ny}][{nx}];

int main() {{
  int i, j, k;
  for (k = 0; k < {nz}; k++)
    for (j = 0; j < {ny}; j++)
      for (i = 0; i < {nx}; i++) {{
        t[k][j][i] = 280.0 + 0.01 * (double)(k * 17 + j * 3 + i);
        u[k][j][i] = 0.1 * (double)(k + j - i);
        tend[k][j][i] = 0.0;
      }}
  em_k: for (k = 0; k < {nz}; k++) {{
    for (j = 0; j < {ny}; j++) {{
      em_i: for (i = 1; i < {nx} - 1; i++) {{
        tend[k][j][i] = 0.5 * (t[k][j][i+1] - t[k][j][i-1]) * u[k][j][i]
                      + 0.01 * t[k][j][i];
      }}
    }}
  }}
  return 0;
}}
"""


register(Workload(
    name="wrf_solve_em",
    category="spec",
    source_fn=solve_em_source,
    default_params={"nx": 18, "ny": 6, "nz": 4},
    analyze_loops=["em_k", "em_i"],
    description="wrf dynamics tendency update (stride-1).",
    models="481.wrf solve_em.F90:179/884/1258/1538.",
))

add_row(Table1Row(
    benchmark="481.wrf",
    paper_loop="solve_em.F90 : 884",
    workload="wrf_solve_em",
    loop="em_k",
    paper=(89.3, 54721.8, 99.8, 117.0, 0.2, 29.1),
    expect_packed="high",
    expect_unit="high",
    expect_nonunit="any",
))
