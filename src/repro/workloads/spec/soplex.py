"""450.soplex — linear programming (simplex, sparse algebra).

The pricing/update loops walk sparse vectors through index arrays:
icc packs 0% everywhere, while the dynamic analysis finds substantial
independence (unit 32-92%, partitions of tens to hundreds).  Modeled as
a sparse axpy-style update with distinct indices.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register
from repro.workloads.spec.table1 import Table1Row, add_row


def sparse_update_source(nnz: int = 96, dim: int = 256) -> str:
    return f"""
// Model of 450.soplex ssvector.cc sparse update: v[idx[k]] += a*val[k].
double v[{dim}];
double val[{nnz}];
int idx[{nnz}];

int main() {{
  int k;
  for (k = 0; k < {dim}; k++)
    v[k] = 0.001 * (double)k;
  for (k = 0; k < {nnz}; k++) {{
    val[k] = 0.01 * (double)(k + 1);
    idx[k] = (k * 53 + 17) % {dim};
  }}
  double alpha = 1.25;
  upd_k: for (k = 0; k < {nnz}; k++) {{
    double y = alpha * val[k];
    v[idx[k]] = v[idx[k]] + y;
  }}
  return 0;
}}
"""


register(Workload(
    name="soplex_sparse_update",
    category="spec",
    source_fn=sparse_update_source,
    default_params={"nnz": 96, "dim": 256},
    analyze_loops=["upd_k"],
    description="soplex sparse vector update through an index array.",
    models="450.soplex ssvector.cc:983 / svector.h:293.",
))

add_row(Table1Row(
    benchmark="450.soplex",
    paper_loop="ssvector.cc : 983",
    workload="soplex_sparse_update",
    loop="upd_k",
    paper=(0.0, 373.0, 32.2, 25.6, 3.5, 2.1),
    expect_packed="zero",
    expect_unit="moderate",
    expect_nonunit="any",
))
