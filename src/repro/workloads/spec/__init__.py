"""Pattern-faithful models of the SPEC CFP2006 hot loops of Table 1.

SPEC sources and reference inputs cannot be shipped, so each benchmark is
represented by a mini-C kernel reproducing the dependence structure,
memory layout, and control flow the paper describes for its hot loops.
``TABLE1_ROWS`` maps each modeled row to the paper's reported values so
the Table-1 bench can print paper-vs-measured side by side.

416.gamess is absent by fidelity: the paper could not compile it with
LLVM and excluded it (§4.1); we record the exclusion rather than invent a
model.
"""

from repro.workloads.spec import (
    bwaves,
    cactusadm,
    calculix,
    dealii,
    gemsfdtd,
    gromacs,
    lbm,
    leslie3d,
    milc,
    namd,
    povray,
    soplex,
    sphinx3,
    tonto,
    wrf,
    zeusmp,
)
from repro.workloads.spec import extra_rows  # noqa: F401  (row registry)
from repro.workloads.spec import extra_kernels  # noqa: F401
from repro.workloads.spec.table1 import TABLE1_ROWS, Table1Row

ALL_SPEC_MODULES = [
    bwaves,
    cactusadm,
    calculix,
    dealii,
    gemsfdtd,
    gromacs,
    lbm,
    leslie3d,
    milc,
    namd,
    povray,
    soplex,
    sphinx3,
    tonto,
    wrf,
    zeusmp,
]

EXCLUDED_BENCHMARKS = {
    "416.gamess": "could not be compiled with LLVM in the paper (§4.1)",
}

__all__ = ["ALL_SPEC_MODULES", "TABLE1_ROWS", "Table1Row",
           "EXCLUDED_BENCHMARKS"]
