"""447.dealII — adaptive finite elements (C++).

The step-14 hot loops assemble local contributions through layers of C++
abstraction (iterators, virtual calls): icc packs 0-3.1%.  Dynamically,
quadrature-point contributions are independent across cells (unit
66-87%), with reduction chains keeping some rows low.  Modeled as a cell
assembly loop calling a shape-function helper (the call blocks static
vectorization) over independent cells, plus per-cell reductions.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register
from repro.workloads.spec.table1 import Table1Row, add_row


def assembly_source(cells: int = 48, quad: int = 4) -> str:
    return f"""
// Model of 447.dealII step-14 local assembly: per-cell quadrature with
// a helper call (abstraction barrier) and a per-cell reduction.
double solution[{cells}][{quad}];
double rhs[{cells}][{quad}];
double cell_residual[{cells}];

double shape_value(double xi, int q) {{
  return (1.0 - xi) * 0.5 + (double)q * 0.125 * xi;
}}

int main() {{
  int c, q;
  for (c = 0; c < {cells}; c++)
    for (q = 0; q < {quad}; q++) {{
      solution[c][q] = 0.01 * (double)(c + q) + 0.5;
      rhs[c][q] = 0.002 * (double)(c * q + 1);
    }}
  asm_c: for (c = 0; c < {cells}; c++) {{
    double acc = 0.0;
    asm_q: for (q = 0; q < {quad}; q++) {{
      double phi = shape_value(solution[c][q], q);
      double contrib = phi * rhs[c][q] + solution[c][q] * 0.25;
      acc += contrib * contrib;
    }}
    cell_residual[c] = acc;
  }}
  return 0;
}}
"""


register(Workload(
    name="dealii_assembly",
    category="spec",
    source_fn=assembly_source,
    default_params={"cells": 48, "quad": 4},
    analyze_loops=["asm_c"],
    description="dealII-style local assembly with helper call + reduction.",
    models="447.dealII step-14.cc:715/780.",
))

add_row(Table1Row(
    benchmark="447.dealII",
    paper_loop="step-14.cc : 715",
    workload="dealii_assembly",
    loop="asm_c",
    paper=(0.0, 130.9, 75.6, 58.2, 12.5, 18.8),
    expect_packed="zero",
    expect_unit="moderate",
    expect_nonunit="any",
))
