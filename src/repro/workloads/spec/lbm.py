"""470.lbm — lattice Boltzmann.

lbm.c:186 is the single hot loop (99.6% of cycles): a stream-and-collide
sweep over every cell.  icc fully packs it (100% in the paper).  The
paper's 61.6%/38.4% unit/non-unit split reflects lbm's 20-distribution
array-of-cells layout; our model uses the SoA equivalent so that the
static vectorizer (which refuses non-unit strides outright) reproduces
the 100%-packed headline — the layout-induced split is consolidated into
the unit column.  This substitution is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register
from repro.workloads.spec.table1 import Table1Row, add_row


def stream_collide_source(cells: int = 160) -> str:
    return f"""
// Model of 470.lbm lbm.c:186 — stream-and-collide (SoA layout).
double f0[{cells}];
double f1[{cells}];
double f2[{cells}];
double f0n[{cells}];
double f1n[{cells}];
double f2n[{cells}];

int main() {{
  int k;
  for (k = 0; k < {cells}; k++) {{
    f0[k] = 0.3 + 0.001 * (double)k;
    f1[k] = 0.2 + 0.0005 * (double)k;
    f2[k] = 0.1 + 0.0002 * (double)k;
  }}
  double omega = 1.8;
  collide: for (k = 1; k < {cells} - 1; k++) {{
    double rho = f0[k] + f1[k] + f2[k];
    double u = (f1[k] - f2[k]) / rho;
    double eq0 = rho * (1.0 - u * u) * 0.6666;
    double eq1 = rho * (u * u * 0.5 + u * 0.5 + 0.1666);
    double eq2 = rho * (u * u * 0.5 - u * 0.5 + 0.1666);
    f0n[k] = f0[k] + omega * (eq0 - f0[k]);
    f1n[k + 1] = f1[k] + omega * (eq1 - f1[k]);
    f2n[k - 1] = f2[k] + omega * (eq2 - f2[k]);
  }}
  return 0;
}}
"""


register(Workload(
    name="lbm_stream_collide",
    category="spec",
    source_fn=stream_collide_source,
    default_params={"cells": 160},
    analyze_loops=["collide"],
    description="lbm stream-and-collide sweep (SoA model).",
    models="470.lbm lbm.c:186 (layout consolidated to SoA; see "
           "EXPERIMENTS.md).",
))

add_row(Table1Row(
    benchmark="470.lbm",
    paper_loop="lbm.c : 186",
    workload="lbm_stream_collide",
    loop="collide",
    paper=(100.0, 137487.0, 61.6, 137487.0, 38.4, 72.1),
    expect_packed="high",
    expect_unit="high",
    expect_nonunit="any",
    note="SoA substitution: the paper's non-unit share folds into the "
         "unit column here.",
))
