"""453.povray — ray tracing (C++).

The paper studies bbox.cpp:894 in depth (§4.4, Limitations): a priority-
queue worklist intersecting rays with a bounding-box tree.  Control flow
is heavily data-dependent; concurrency is small (avg 11-15) and only the
low-level vector geometry (dot products, min/max per axis) shows modest
unit potential (59-66%) in short groups.  Modeled as a tree-walk loop
whose branch depends on loaded node data.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register
from repro.workloads.spec.table1 import Table1Row, add_row


def bbox_source(nodes: int = 64) -> str:
    return f"""
// Model of 453.povray bbox.cpp:894 — bounding-box tree intersection
// with data-dependent control flow.
struct bbox {{ double lox; double loy; double loz;
               double hix; double hiy; double hiz; int kind; }};
struct bbox tree[{nodes}];
double hits[{nodes}];

int main() {{
  int k;
  for (k = 0; k < {nodes}; k++) {{
    tree[k].lox = 0.01 * (double)k;
    tree[k].loy = 0.02 * (double)k;
    tree[k].loz = 0.005 * (double)k;
    tree[k].hix = tree[k].lox + 1.0;
    tree[k].hiy = tree[k].loy + 1.5;
    tree[k].hiz = tree[k].loz + 0.5;
    tree[k].kind = (k * 7 + 3) % 3;
  }}
  double ox = 0.5;
  double oy = 0.25;
  double oz = 0.1;
  double dx = 0.71;
  double dy = 0.5;
  double dz = 0.5;
  walk: for (k = 0; k < {nodes}; k++) {{
    double tx0 = (tree[k].lox - ox) / dx;
    double ty0 = (tree[k].loy - oy) / dy;
    double tz0 = (tree[k].loz - oz) / dz;
    double tnear = fmax(fmax(tx0, ty0), tz0);
    if (tree[k].kind == 0) {{
      double tx1 = (tree[k].hix - ox) / dx;
      double ty1 = (tree[k].hiy - oy) / dy;
      double tfar = fmin(tx1, ty1);
      hits[k] = tfar - tnear;
    }} else {{
      hits[k] = tnear * 0.5;
    }}
  }}
  return 0;
}}
"""


register(Workload(
    name="povray_bbox",
    category="spec",
    source_fn=bbox_source,
    default_params={"nodes": 64},
    analyze_loops=["walk"],
    description="povray bounding-box intersection with branching.",
    models="453.povray bbox.cpp:894.",
))

add_row(Table1Row(
    benchmark="453.povray",
    paper_loop="bbox.cpp : 894",
    workload="povray_bbox",
    loop="walk",
    paper=(0.2, 11.2, 62.6, 14.8, 27.3, 2.7),
    expect_packed="zero",
    expect_unit="moderate",
    expect_nonunit="any",
    note="Paper §4.4 'Limitations': potential exists but is hard to "
         "realize under irregular control flow.",
))
