"""410.bwaves — blast-wave solver.

Two Table-1 loops are modeled:

- ``block_solver.f : 55`` — the 5x5 block mat-vec inside the implicit
  solver: clean stride-1 Fortran loops that icc packs well (65.8% packed,
  97.5% unit).  Modeled by :func:`block_solver_source`'s ``bs_i`` loop:
  unit-stride accesses with an unrolled 5-element block product.
- ``jacobian_lam.f : 30`` — the §4.4 case study (0%-packed original
  layout); modeled by the ``bwaves_jacobian`` case-study workload.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register
from repro.workloads.spec.table1 import Table1Row, add_row


def block_solver_source(nx: int = 16, ny: int = 8, nb: int = 5) -> str:
    return f"""
// Model of 410.bwaves block_solver.f:55 — 5x5 block matrix-vector
// products along the grid, stride-1 in the innermost grid dimension.
double a[{ny}][{nb}][{nb}][{nx}];
double x[{ny}][{nb}][{nx}];
double y[{ny}][{nb}][{nx}];

int main() {{
  int i, j, b, c;
  for (j = 0; j < {ny}; j++)
    for (b = 0; b < {nb}; b++) {{
      for (i = 0; i < {nx}; i++)
        x[j][b][i] = 0.01 * (double)(j + b + i) + 1.0;
      for (c = 0; c < {nb}; c++)
        for (i = 0; i < {nx}; i++)
          a[j][b][c][i] = 0.001 * (double)(j + b * 5 + c + i);
    }}
  bs_j: for (j = 0; j < {ny}; j++) {{
    for (b = 0; b < {nb}; b++) {{
      bs_i: for (i = 0; i < {nx}; i++) {{
        y[j][b][i] = a[j][b][0][i] * x[j][0][i]
                   + a[j][b][1][i] * x[j][1][i]
                   + a[j][b][2][i] * x[j][2][i]
                   + a[j][b][3][i] * x[j][3][i]
                   + a[j][b][4][i] * x[j][4][i];
      }}
    }}
  }}
  return 0;
}}
"""


register(Workload(
    name="bwaves_block_solver",
    category="spec",
    source_fn=block_solver_source,
    default_params={"nx": 16, "ny": 8, "nb": 5},
    analyze_loops=["bs_j", "bs_i"],
    description="bwaves implicit-solver block mat-vec (stride-1).",
    models="410.bwaves block_solver.f:55.",
))

add_row(Table1Row(
    benchmark="410.bwaves",
    paper_loop="block_solver.f : 55",
    workload="bwaves_block_solver",
    loop="bs_j",
    paper=(65.8, 39.9, 97.5, 11.1, 0.0, 0.0),
    expect_packed="high",
    expect_unit="high",
    expect_nonunit="zero",
))

add_row(Table1Row(
    benchmark="410.bwaves",
    paper_loop="jacobi_lam.f : 30",
    workload="bwaves_jacobian",
    loop="jac_k",
    paper=(0.0, 0.0, 0.0, 0.0, 0.0, 0.0),
    expect_packed="zero",
    expect_unit="any",
    expect_nonunit="present",
    note="5% threshold extended-study loop (§4.4); paper reports "
         "significant unit and non-unit potential, low packed.",
))
