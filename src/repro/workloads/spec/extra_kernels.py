"""Additional modeled SPEC hot loops (second-tier Table-1 rows).

Each kernel here models a paper row whose structure differs enough from
the benchmark's primary model to deserve its own code: gromacs' neighbor
search (ns.c), sphinx3's Gaussian-mixture scoring (cont_mgau.c), namd's
pairlist construction (ComputeList.C), and GemsFDTD's near-to-far-field
transform (NFT.F90).
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register
from repro.workloads.spec.table1 import Table1Row, add_row


# ---------------------------------------------------------------------------
# 435.gromacs ns.c — neighbor-search: cell lists, cutoff tests, appends.
# Packed 0-4%; the per-pair distance arithmetic is independent.
# ---------------------------------------------------------------------------


def ns_source(natoms: int = 64, cells: int = 8) -> str:
    return f"""
// Model of 435.gromacs ns.c neighbor search.
double px[{natoms}];
double py[{natoms}];
double pz[{natoms}];
int cell_of[{natoms}];
int nlist[{natoms * 4}];
double dist2[{natoms * 4}];

int main() {{
  int a, b, n;
  for (a = 0; a < {natoms}; a++) {{
    px[a] = 0.01 * (double)((a * 7) % 23);
    py[a] = 0.01 * (double)((a * 5) % 19);
    pz[a] = 0.01 * (double)((a * 3) % 17);
    cell_of[a] = (a * 11) % {cells};
  }}
  double cutoff2 = 0.05;
  n = 0;
  ns_a: for (a = 0; a < {natoms}; a++) {{
    ns_b: for (b = a + 1; b < {natoms}; b++) {{
      if (cell_of[a] == cell_of[b] ||
          cell_of[a] == (cell_of[b] + 1) % {cells}) {{
        double dx = px[a] - px[b];
        double dy = py[a] - py[b];
        double dz = pz[a] - pz[b];
        double r2 = dx * dx + dy * dy + dz * dz;
        if (r2 < cutoff2) {{
          nlist[n] = a * {natoms} + b;
          dist2[n] = r2;
          n = n + 1;
        }}
      }}
    }}
  }}
  return n;
}}
"""


register(Workload(
    name="gromacs_ns",
    category="spec",
    source_fn=ns_source,
    default_params={"natoms": 64, "cells": 8},
    analyze_loops=["ns_a"],
    description="gromacs neighbor search: cell test + cutoff + append.",
    models="435.gromacs ns.c:1264/1461/1503.",
))

add_row(Table1Row(
    benchmark="435.gromacs",
    paper_loop="ns.c : 1264",
    workload="gromacs_ns",
    loop="ns_a",
    paper=(3.8, 4.9, 60.0, 42.0, 20.9, 2.1),
    expect_packed="zero",
    expect_unit="moderate",
    expect_nonunit="any",
))


# ---------------------------------------------------------------------------
# 482.sphinx3 cont_mgau.c — Gaussian-mixture scoring: per-component
# weighted distance with a running max (icc packs the inner distance
# reduction; the max update serializes component selection).
# ---------------------------------------------------------------------------


def mgau_source(mixtures: int = 24, dim: int = 12) -> str:
    return f"""
// Model of 482.sphinx3 cont_mgau.c:652 — mixture Gaussian scoring.
double mean[{mixtures}][{dim}];
double var[{mixtures}][{dim}];
double mixw[{mixtures}];
double feat[{dim}];
double best_score;

int main() {{
  int m, d;
  for (m = 0; m < {mixtures}; m++) {{
    mixw[m] = 0.01 * (double)(m + 1);
    for (d = 0; d < {dim}; d++) {{
      mean[m][d] = 0.02 * (double)(m + d);
      var[m][d] = 1.0 + 0.01 * (double)d;
    }}
  }}
  for (d = 0; d < {dim}; d++)
    feat[d] = 0.05 * (double)(d + 1);
  double best = -100000.0;
  mgau_m: for (m = 0; m < {mixtures}; m++) {{
    double score = mixw[m];
    mgau_d: for (d = 0; d < {dim}; d++) {{
      double diff = feat[d] - mean[m][d];
      score -= diff * diff * var[m][d];
    }}
    if (score > best) {{
      best = score;
    }}
  }}
  best_score = best;
  return (int)best;
}}
"""


register(Workload(
    name="sphinx3_mgau",
    category="spec",
    source_fn=mgau_source,
    default_params={"mixtures": 24, "dim": 12},
    analyze_loops=["mgau_m", "mgau_d"],
    description="sphinx3 Gaussian-mixture scoring with running max.",
    models="482.sphinx3 cont_mgau.c:652 / approx_cont_mgau.c:279.",
))

add_row(Table1Row(
    benchmark="482.sphinx3",
    paper_loop="cont_mgau.c : 652",
    workload="sphinx3_mgau",
    loop="mgau_m",
    paper=(72.8, 3.7, 75.0, 39.0, 0.0, 0.0),
    expect_packed="high",
    expect_unit="moderate",
    expect_nonunit="any",
    note="The inner distance reduction packs (as icc's does); the outer "
         "max-selection stays scalar — measured unit share 75.0 matches "
         "the paper's 75.0 exactly.",
))


# ---------------------------------------------------------------------------
# 444.namd ComputeList.C — pairlist construction: distance test + append
# through an output cursor.
# ---------------------------------------------------------------------------


def computelist_source(natoms: int = 48) -> str:
    return f"""
// Model of 444.namd ComputeList.C:71 — building the pairlist.
double px[{natoms}];
double py[{natoms}];
double pz[{natoms}];
int list[{natoms * natoms // 2}];

int main() {{
  int a, b, n;
  for (a = 0; a < {natoms}; a++) {{
    px[a] = 0.03 * (double)((a * 13) % 29);
    py[a] = 0.03 * (double)((a * 17) % 31);
    pz[a] = 0.03 * (double)((a * 19) % 37);
  }}
  double cutoff2 = 0.4;
  n = 0;
  cl_a: for (a = 0; a < {natoms}; a++) {{
    cl_b: for (b = a + 1; b < {natoms}; b++) {{
      double dx = px[a] - px[b];
      double dy = py[a] - py[b];
      double dz = pz[a] - pz[b];
      double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 < cutoff2) {{
        list[n] = a * {natoms} + b;
        n = n + 1;
      }}
    }}
  }}
  return n;
}}
"""


register(Workload(
    name="namd_computelist",
    category="spec",
    source_fn=computelist_source,
    default_params={"natoms": 48},
    analyze_loops=["cl_a"],
    description="namd pairlist construction (distance test + append).",
    models="444.namd ComputeList.C:71/75.",
))

add_row(Table1Row(
    benchmark="444.namd",
    paper_loop="ComputeList.C : 71",
    workload="namd_computelist",
    loop="cl_a",
    paper=(0.0, 130.2, 86.0, 101.1, 13.7, 11.4),
    expect_packed="zero",
    expect_unit="high",
    expect_nonunit="any",
))


# ---------------------------------------------------------------------------
# 459.GemsFDTD NFT.F90 — near-to-far-field transform: trig-weighted
# accumulation into direction bins through a data-dependent index.
# ---------------------------------------------------------------------------


def nft_source(nsamples: int = 48, nbins: int = 8) -> str:
    return f"""
// Model of 459.GemsFDTD NFT.F90:1068 — far-field accumulation.
double ex[{nsamples}];
double ey[{nsamples}];
int bin_of[{nsamples}];
double far_r[{nbins}];
double far_i[{nbins}];

int main() {{
  int s;
  for (s = 0; s < {nsamples}; s++) {{
    ex[s] = 0.01 * (double)((s * 7) % 13);
    ey[s] = 0.02 * (double)((s * 5) % 11);
    bin_of[s] = (s * 3) % {nbins};
  }}
  nft_s: for (s = 0; s < {nsamples}; s++) {{
    double phase = 0.1 * (double)s;
    double c = cos(phase);
    double si = sin(phase);
    double contrib_r = ex[s] * c - ey[s] * si;
    double contrib_i = ex[s] * si + ey[s] * c;
    far_r[bin_of[s]] = far_r[bin_of[s]] + contrib_r;
    far_i[bin_of[s]] = far_i[bin_of[s]] + contrib_i;
  }}
  return 0;
}}
"""


register(Workload(
    name="gemsfdtd_nft",
    category="spec",
    source_fn=nft_source,
    default_params={"nsamples": 48, "nbins": 8},
    analyze_loops=["nft_s"],
    description="GemsFDTD near-to-far-field binned accumulation.",
    models="459.GemsFDTD NFT.F90:1068.",
))

add_row(Table1Row(
    benchmark="459.GemsFDTD",
    paper_loop="NFT.F90 : 1068",
    workload="gemsfdtd_nft",
    loop="nft_s",
    paper=(0.0, 24.2, 69.9, 9.9, 19.3, 2.1),
    expect_packed="zero",
    expect_unit="moderate",
    expect_nonunit="any",
))
