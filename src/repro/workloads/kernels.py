"""Standalone compute kernels: 2-D Gauss-Seidel and the 2-D PDE solver.

These are the paper's Table-2 kernels and the first two Table-4 case
studies.  Both appear in original form and in the manually transformed
form the paper derives from the analysis output (Listings 5 and 6).

- Gauss-Seidel: 9-point in-place stencil.  The only true dependence is
  through ``A[i][j-1]``; splitting the j-loop moves the eight
  dependence-free additions into a fully vectorizable first loop.
- PDE solver: the solid-fuel-ignition kernel from PETSc's ex5.  The
  boundary-condition ``if`` inside the loop nest blocks vectorization;
  hoisting it (boundary blocks vs. interior blocks) exposes a clean
  vectorizable interior loop.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register


def gauss_seidel_source(n: int = 20, t: int = 2) -> str:
    return f"""
// 9-point Gauss-Seidel stencil — paper Listing 5 (original).
double A[{n}][{n}];

int main() {{
  int t, i, j;
  double cnst = 1.0 / 9.0;
  for (i = 0; i < {n}; i++)
    for (j = 0; j < {n}; j++)
      A[i][j] = (double)(i * {n} + j) * 0.01;
  time_loop: for (t = 0; t < {t}; t++)
    row_loop: for (i = 1; i < {n} - 1; i++)
      gs: for (j = 1; j < {n} - 1; j++)
        A[i][j] = (A[i-1][j-1] + A[i-1][j] +
                   A[i-1][j+1] + A[i][j-1] +
                   A[i][j] + A[i][j+1] +
                   A[i+1][j-1] + A[i+1][j] +
                   A[i+1][j+1]) * cnst;
  return 0;
}}
"""


def gauss_seidel_split_source(n: int = 20, t: int = 2) -> str:
    return f"""
// Gauss-Seidel with the j-loop split — paper Listing 5 (transformed).
// The first j loop has no loop-carried dependence and vectorizes.
double A[{n}][{n}];
double temp[{n}];

int main() {{
  int t, i, j;
  double cnst = 1.0 / 9.0;
  for (i = 0; i < {n}; i++)
    for (j = 0; j < {n}; j++)
      A[i][j] = (double)(i * {n} + j) * 0.01;
  time_loop: for (t = 0; t < {t}; t++)
    row_loop: for (i = 1; i < {n} - 1; i++) {{
      gs_vec: for (j = 1; j < {n} - 1; j++)
        temp[j] = A[i-1][j-1] + A[i-1][j] +
                  A[i-1][j+1] + A[i][j] +
                  A[i][j+1] + A[i+1][j-1] +
                  A[i+1][j] + A[i+1][j+1];
      gs_seq: for (j = 1; j < {n} - 1; j++)
        A[i][j] = cnst * (A[i][j-1] + temp[j]);
    }}
  return 0;
}}
"""


def pde_solver_source(block: int = 16, grid: int = 3) -> str:
    """2-D PDE grid solver (PETSc ex5 style) — paper Listing 6 (original).

    The grid is ``grid x grid`` blocks of ``block x block`` cells; the
    boundary test inside the innermost loop kills vectorization.
    """
    n = block * grid
    return f"""
// Solid-fuel ignition kernel: f = residual of the nonlinear PDE.
double x[{n}][{n}];
double f[{n}][{n}];

void block_kernel(int ys, int ym, int xs, int xm,
                  double hydhx, double hxdhy, double sc) {{
  int i, j;
  blk_j: for (j = ys; j < ys + ym; j++) {{
    blk_i: for (i = xs; i < xs + xm; i++) {{
      if (i == 0 || j == 0 || i == {n} - 1 || j == {n} - 1) {{
        f[j][i] = x[j][i];
      }} else {{
        double u = x[j][i];
        double uxx = (2.0 * u - x[j][i-1] - x[j][i+1]) * hydhx;
        double uyy = (2.0 * u - x[j-1][i] - x[j+1][i]) * hxdhy;
        f[j][i] = uxx + uyy - sc * exp(u);
      }}
    }}
  }}
}}

int main() {{
  int i, j, bi, bj;
  for (j = 0; j < {n}; j++)
    for (i = 0; i < {n}; i++)
      x[j][i] = 0.001 * (double)(j * {n} + i);
  grid_loop: for (bj = 0; bj < {grid}; bj++)
    for (bi = 0; bi < {grid}; bi++)
      block_kernel(bj * {block}, {block}, bi * {block}, {block},
                   1.0, 1.0, 0.5);
  return 0;
}}
"""


def pde_solver_hoisted_source(block: int = 16, grid: int = 3) -> str:
    """PDE solver with the boundary test hoisted out of the loop nest —
    paper Listing 6 (transformed).  Interior blocks run a branch-free,
    vectorizable loop."""
    n = block * grid
    return f"""
double x[{n}][{n}];
double f[{n}][{n}];

void boundary_kernel(int ys, int ym, int xs, int xm,
                     double hydhx, double hxdhy, double sc) {{
  int i, j;
  bnd_j: for (j = ys; j < ys + ym; j++) {{
    bnd_i: for (i = xs; i < xs + xm; i++) {{
      if (i == 0 || j == 0 || i == {n} - 1 || j == {n} - 1) {{
        f[j][i] = x[j][i];
      }} else {{
        double u = x[j][i];
        double uxx = (2.0 * u - x[j][i-1] - x[j][i+1]) * hydhx;
        double uyy = (2.0 * u - x[j-1][i] - x[j+1][i]) * hxdhy;
        f[j][i] = uxx + uyy - sc * exp(u);
      }}
    }}
  }}
}}

void interior_kernel(int ys, int ym, int xs, int xm,
                     double hydhx, double hxdhy, double sc) {{
  int i, j;
  int_j: for (j = ys; j < ys + ym; j++) {{
    int_i: for (i = xs; i < xs + xm; i++) {{
      double u = x[j][i];
      double uxx = (2.0 * u - x[j][i-1] - x[j][i+1]) * hydhx;
      double uyy = (2.0 * u - x[j-1][i] - x[j+1][i]) * hxdhy;
      f[j][i] = uxx + uyy - sc * exp(u);
    }}
  }}
}}

int main() {{
  int i, j, bi, bj;
  for (j = 0; j < {n}; j++)
    for (i = 0; i < {n}; i++)
      x[j][i] = 0.001 * (double)(j * {n} + i);
  grid_loop: for (bj = 0; bj < {grid}; bj++) {{
    for (bi = 0; bi < {grid}; bi++) {{
      int ys = bj * {block};
      int xs = bi * {block};
      if (ys == 0 || xs == 0 ||
          ys + {block} == {n} || xs + {block} == {n}) {{
        boundary_kernel(ys, {block}, xs, {block}, 1.0, 1.0, 0.5);
      }} else {{
        interior_kernel(ys, {block}, xs, {block}, 1.0, 1.0, 0.5);
      }}
    }}
  }}
  return 0;
}}
"""


register(Workload(
    name="gauss_seidel",
    category="kernel",
    source_fn=gauss_seidel_source,
    default_params={"n": 20, "t": 2},
    analyze_loops=["time_loop"],
    description="9-point 2-D Gauss-Seidel stencil (original).",
    models="Paper Table 2 / Table 4 / Listing 5 (original); "
           "paper ran N=1000, T=20.",
))

register(Workload(
    name="gauss_seidel_split",
    category="casestudy",
    source_fn=gauss_seidel_split_source,
    default_params={"n": 20, "t": 2},
    analyze_loops=["time_loop"],
    description="Gauss-Seidel with the vectorization-enabling loop split.",
    models="Paper Listing 5 (transformed).",
))

register(Workload(
    name="pde_solver",
    category="kernel",
    source_fn=pde_solver_source,
    default_params={"block": 16, "grid": 3},
    analyze_loops=["grid_loop"],
    description="2-D PDE grid solver with in-loop boundary test (original).",
    models="Paper Table 2 / Listing 6 (original); PETSc ex5 kernel, "
           "paper ran 512x512 blocks in a 16x16 grid.",
))

register(Workload(
    name="pde_solver_hoisted",
    category="casestudy",
    source_fn=pde_solver_hoisted_source,
    default_params={"block": 16, "grid": 3},
    analyze_loops=["grid_loop"],
    description="PDE solver with the boundary test hoisted per block.",
    models="Paper Listing 6 (transformed).",
))
