"""Workload registry.

All workload modules register their kernels here at import time;
:func:`get_workload` triggers the imports lazily so ``import repro`` stays
cheap.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import WorkloadError
from repro.workloads.base import Workload

_REGISTRY: Dict[str, Workload] = {}
_LOADED = False


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def _ensure_loaded() -> None:
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    # Importing these modules populates the registry.
    from repro.workloads import kernels, casestudies  # noqa: F401
    from repro.workloads.spec import ALL_SPEC_MODULES  # noqa: F401
    from repro.workloads.utdsp import ALL_UTDSP_MODULES  # noqa: F401


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise WorkloadError(
            f"unknown workload {name!r}; known: {known}"
        ) from None


def list_workloads(category: Optional[str] = None) -> List[Workload]:
    _ensure_loaded()
    out = sorted(_REGISTRY.values(), key=lambda w: w.name)
    if category is not None:
        out = [w for w in out if w.category == category]
    return out
