"""Case-study kernels: bwaves, milc, and gromacs, original + transformed.

Each pair reproduces one of the paper's §4.4 manual-transformation case
studies (Listings 7, 8, 9).  The originals model the Table-1 hot loops of
the corresponding SPEC CFP2006 benchmarks; the transformed versions apply
exactly the paper's rewrite and must flip the static vectorizer from
refusal to success.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register


# ---------------------------------------------------------------------------
# 410.bwaves — jacobian_lam.f:30 (Listing 7): (5,5,nx,ny,nz) flux Jacobian
# with mod-based wraparound.  In C row-major the Fortran layout becomes
# je[nz][ny][nx][5][5]; the i loop walks the third-from-innermost dimension
# (stride 25 elements) and `%` computes the periodic neighbor.
# ---------------------------------------------------------------------------


def bwaves_jacobian_source(nx: int = 10, ny: int = 6, nz: int = 4) -> str:
    return f"""
// Model of 410.bwaves jacobian_lam.f:30 (original layout).
double je[{nz}][{ny}][{nx}][5][5];
double q[{nz}][{ny}][{nx}][5];

int main() {{
  int i, j, k, a;
  for (k = 0; k < {nz}; k++)
    for (j = 0; j < {ny}; j++)
      for (i = 0; i < {nx}; i++)
        for (a = 0; a < 5; a++)
          q[k][j][i][a] = 0.01 * (double)(k + j + i + a) + 1.0;
  jac_k: for (k = 0; k < {nz}; k++) {{
    int kp1 = (k + 1) % {nz};
    for (j = 0; j < {ny}; j++) {{
      int jp1 = (j + 1) % {ny};
      jac_i: for (i = 0; i < {nx}; i++) {{
        int ip1 = (i + 1) % {nx};
        double ros = q[kp1][jp1][ip1][0];
        double us = q[k][j][i][1] / ros;
        double vs = q[k][j][i][2] / ros;
        je[k][j][i][0][0] = ros * us;
        je[k][j][i][0][1] = ros * vs;
        je[k][j][i][1][0] = us * us + ros;
        je[k][j][i][1][1] = us * vs;
        je[k][j][i][2][0] = vs * vs - ros;
        je[k][j][i][2][1] = ros - us;
      }}
    }}
  }}
  return 0;
}}
"""


def bwaves_transformed_source(nx: int = 10, ny: int = 6, nz: int = 4) -> str:
    """Listing 7 (transformed): the i dimension moved innermost, mod
    removed by peeling the wraparound iteration."""
    return f"""
// Model of 410.bwaves jacobian loop after the data layout transformation.
double je[{nz}][{ny}][5][5][{nx}];
double q[{nz}][{ny}][5][{nx}];

int main() {{
  int i, j, k, a;
  for (k = 0; k < {nz}; k++)
    for (j = 0; j < {ny}; j++)
      for (a = 0; a < 5; a++)
        for (i = 0; i < {nx}; i++)
          q[k][j][a][i] = 0.01 * (double)(k + j + i + a) + 1.0;
  jac_k: for (k = 0; k < {nz}; k++) {{
    int kp1 = (k + 1) % {nz};
    for (j = 0; j < {ny}; j++) {{
      int jp1 = (j + 1) % {ny};
      jac_i: for (i = 0; i < {nx} - 1; i++) {{
        int ip1 = i + 1;
        double ros = q[kp1][jp1][0][ip1];
        double us = q[k][j][1][i] / ros;
        double vs = q[k][j][2][i] / ros;
        je[k][j][0][0][i] = ros * us;
        je[k][j][0][1][i] = ros * vs;
        je[k][j][1][0][i] = us * us + ros;
        je[k][j][1][1][i] = us * vs;
        je[k][j][2][0][i] = vs * vs - ros;
        je[k][j][2][1][i] = ros - us;
      }}
      // Peeled wraparound iteration (i = nx-1, ip1 = 0).
      i = {nx} - 1;
      {{
        double ros = q[kp1][jp1][0][0];
        double us = q[k][j][1][i] / ros;
        double vs = q[k][j][2][i] / ros;
        je[k][j][0][0][i] = ros * us;
        je[k][j][0][1][i] = ros * vs;
        je[k][j][1][0][i] = us * us + ros;
        je[k][j][1][1][i] = us * vs;
        je[k][j][2][0][i] = vs * vs - ros;
        je[k][j][2][1][i] = ros - us;
      }}
    }}
  }}
  return 0;
}}
"""


# ---------------------------------------------------------------------------
# 433.milc — quark_stuff.c:1452 (Listing 8): 3x3 complex matrix-vector
# product at every lattice site, array-of-structures layout.
# ---------------------------------------------------------------------------


def milc_source(sites: int = 96) -> str:
    return f"""
// Model of 433.milc su3 matrix-vector multiply (original AoS layout).
struct complex {{ double r; double i; }};
struct su3_vector {{ struct complex c[3]; }};
struct su3_matrix {{ struct complex e[3][3]; }};

struct su3_matrix lattice[{sites}];
struct su3_vector vec[{sites}];
struct su3_vector out_vec[{sites}];

int main() {{
  int s, i, j;
  for (s = 0; s < {sites}; s++) {{
    for (i = 0; i < 3; i++) {{
      vec[s].c[i].r = 0.01 * (double)(s + i) + 0.5;
      vec[s].c[i].i = 0.02 * (double)(s - i) - 0.25;
      for (j = 0; j < 3; j++) {{
        lattice[s].e[i][j].r = 0.001 * (double)(s + i * 3 + j);
        lattice[s].e[i][j].i = 0.002 * (double)(s - i - j);
      }}
    }}
  }}
  sites_loop: for (s = 0; s < {sites}; s++) {{
    for (i = 0; i < 3; i++) {{
      double xr = 0.0;
      double xi = 0.0;
      mv_j: for (j = 0; j < 3; j++) {{
        double yr = lattice[s].e[i][j].r * vec[s].c[j].r -
                    lattice[s].e[i][j].i * vec[s].c[j].i;
        double yi = lattice[s].e[i][j].r * vec[s].c[j].i +
                    lattice[s].e[i][j].i * vec[s].c[j].r;
        xr += yr;
        xi += yi;
      }}
      out_vec[s].c[i].r = xr;
      out_vec[s].c[i].i = xi;
    }}
  }}
  return 0;
}}
"""


def milc_transformed_source(sites: int = 96) -> str:
    """Listing 8 (transformed): lattice of matrices -> matrix of lattices
    (AoS -> SoA), exposing unit-stride inner loops over sites."""
    return f"""
// Model of 433.milc su3 matrix-vector multiply (SoA layout).
struct lattice_dlt {{ double r[3][3][{sites}]; double i[3][3][{sites}]; }};
struct vec_dlt {{ double r[3][{sites}]; double i[3][{sites}]; }};

struct lattice_dlt lattice;
struct vec_dlt vec;
struct vec_dlt out_vec;

int main() {{
  int s, i, j;
  for (i = 0; i < 3; i++) {{
    for (s = 0; s < {sites}; s++) {{
      vec.r[i][s] = 0.01 * (double)(s + i) + 0.5;
      vec.i[i][s] = 0.02 * (double)(s - i) - 0.25;
      out_vec.r[i][s] = 0.0;
      out_vec.i[i][s] = 0.0;
    }}
    for (j = 0; j < 3; j++)
      for (s = 0; s < {sites}; s++) {{
        lattice.r[i][j][s] = 0.001 * (double)(s + i * 3 + j);
        lattice.i[i][j][s] = 0.002 * (double)(s - i - j);
      }}
  }}
  outer_i: for (i = 0; i < 3; i++) {{
    for (j = 0; j < 3; j++) {{
      sites_vec: for (s = 0; s < {sites}; s++) {{
        double x_r = lattice.r[i][j][s] * vec.r[j][s] -
                     lattice.i[i][j][s] * vec.i[j][s];
        double x_i = lattice.r[i][j][s] * vec.i[j][s] +
                     lattice.i[i][j][s] * vec.r[j][s];
        out_vec.r[i][s] += x_r;
        out_vec.i[i][s] += x_i;
      }}
    }}
  }}
  return 0;
}}
"""


# ---------------------------------------------------------------------------
# 435.gromacs — innerf.f:3960 (Listing 9): nonbonded force inner loop with
# an indirection array.  The values in jjnr are distinct, so iterations
# are in fact independent — but no compiler can prove it.  Like the real
# water kernel, each jjnr entry interacts with three i-atoms (one LJ +
# Coulomb pair, two Coulomb-only pairs), so the arithmetic dominates the
# gather/scatter traffic.
# ---------------------------------------------------------------------------


def _gromacs_interaction(jx: str, jy: str, jz: str) -> str:
    """The 3-interaction force math shared by both gromacs variants.

    Reads j-atom coordinates from the given expressions; leaves the force
    deltas in ``tx``, ``ty``, ``tz`` and accumulates ``vnbtot``.
    """
    return f"""
      double dx1 = ix1 - {jx};
      double dy1 = iy1 - {jy};
      double dz1 = iz1 - {jz};
      double rsq1 = dx1 * dx1 + dy1 * dy1 + dz1 * dz1;
      double rinv1 = 1.0 / sqrt(rsq1 + 0.01);
      double rinvsq1 = rinv1 * rinv1;
      double rinvsix = rinvsq1 * rinvsq1 * rinvsq1;
      double vnb6 = c6 * rinvsix;
      double vnb12 = c12 * rinvsix * rinvsix;
      double fs1 = (12.0 * vnb12 - 6.0 * vnb6 + qq * rinv1) * rinvsq1;
      vnbtot = vnbtot + vnb12 - vnb6;
      double dx2 = ix2 - {jx};
      double dy2 = iy2 - {jy};
      double dz2 = iz2 - {jz};
      double rsq2 = dx2 * dx2 + dy2 * dy2 + dz2 * dz2;
      double rinv2 = 1.0 / sqrt(rsq2 + 0.01);
      double fs2 = qq * rinv2 * rinv2 * rinv2;
      double dx3 = ix3 - {jx};
      double dy3 = iy3 - {jy};
      double dz3 = iz3 - {jz};
      double rsq3 = dx3 * dx3 + dy3 * dy3 + dz3 * dz3;
      double rinv3 = 1.0 / sqrt(rsq3 + 0.01);
      double fs3 = qq * rinv3 * rinv3 * rinv3;
      double tx = dx1 * fs1 + dx2 * fs2 + dx3 * fs3;
      double ty = dy1 * fs1 + dy2 * fs2 + dy3 * fs3;
      double tz = dz1 * fs1 + dz2 * fs2 + dz3 * fs3;
"""


_GROMACS_CONSTS = """
  double ix1 = 0.5;
  double iy1 = 0.25;
  double iz1 = 0.125;
  double ix2 = 0.75;
  double iy2 = 0.5;
  double iz2 = 0.375;
  double ix3 = 1.0;
  double iy3 = 0.625;
  double iz3 = 0.875;
  double c6 = 0.003;
  double c12 = 0.001;
  double qq = 0.25;
  double vnbtot = 0.0;
"""


def gromacs_source(pairs: int = 64, natoms: int = 128) -> str:
    return f"""
// Model of 435.gromacs nonbonded inner loop (original).
double pos[{3 * natoms}];
double faction[{3 * natoms}];
int jjnr[{pairs}];

int main() {{
  int k;
  for (k = 0; k < {3 * natoms}; k++) {{
    pos[k] = 0.001 * (double)k;
    faction[k] = 0.0005 * (double)k;
  }}
  // A permutation-ish index set: distinct j values, irregular order.
  for (k = 0; k < {pairs}; k++)
    jjnr[k] = (k * 37 + 11) % {natoms};
{_GROMACS_CONSTS}
  force_k: for (k = 0; k < {pairs}; k++) {{
    int jnr = jjnr[k];
    int j3 = 3 * jnr;
    double jx1 = pos[j3];
    double jy1 = pos[j3 + 1];
    double jz1 = pos[j3 + 2];
{_gromacs_interaction("jx1", "jy1", "jz1")}
    faction[j3] = faction[j3] - tx;
    faction[j3 + 1] = faction[j3 + 1] - ty;
    faction[j3 + 2] = faction[j3 + 2] - tz;
  }}
  return (int)vnbtot;
}}
"""


def gromacs_transformed_source(pairs: int = 64, natoms: int = 128) -> str:
    """Listing 9 (transformed): strip-mine by 4, distribute the gather,
    compute, and scatter phases; the compute loop vectorizes."""
    return f"""
// Model of 435.gromacs nonbonded inner loop (strip-mined + distributed).
double pos[{3 * natoms}];
double faction[{3 * natoms}];
int jjnr[{pairs}];

int main() {{
  int k, kb;
  for (k = 0; k < {3 * natoms}; k++) {{
    pos[k] = 0.001 * (double)k;
    faction[k] = 0.0005 * (double)k;
  }}
  for (k = 0; k < {pairs}; k++)
    jjnr[k] = (k * 37 + 11) % {natoms};
{_GROMACS_CONSTS}
  int vect_j3[4];
  double vect_jx1[4];
  double vect_jy1[4];
  double vect_jz1[4];
  double vect_fjx1[4];
  double vect_fjy1[4];
  double vect_fjz1[4];
  force_blk: for (kb = 0; kb < {pairs // 4}; kb++) {{
    int kv;
    gather: for (kv = 0; kv < 4; kv++) {{
      int jnr = jjnr[kb * 4 + kv];
      vect_j3[kv] = 3 * jnr;
      vect_jx1[kv] = pos[vect_j3[kv]];
      vect_jy1[kv] = pos[vect_j3[kv] + 1];
      vect_jz1[kv] = pos[vect_j3[kv] + 2];
      vect_fjx1[kv] = faction[vect_j3[kv]];
      vect_fjy1[kv] = faction[vect_j3[kv] + 1];
      vect_fjz1[kv] = faction[vect_j3[kv] + 2];
    }}
    compute: for (kv = 0; kv < 4; kv++) {{
{_gromacs_interaction("vect_jx1[kv]", "vect_jy1[kv]", "vect_jz1[kv]")}
      vect_fjx1[kv] = vect_fjx1[kv] - tx;
      vect_fjy1[kv] = vect_fjy1[kv] - ty;
      vect_fjz1[kv] = vect_fjz1[kv] - tz;
    }}
    scatter: for (kv = 0; kv < 4; kv++) {{
      faction[vect_j3[kv]] = vect_fjx1[kv];
      faction[vect_j3[kv] + 1] = vect_fjy1[kv];
      faction[vect_j3[kv] + 2] = vect_fjz1[kv];
    }}
  }}
  return (int)vnbtot;
}}
"""


register(Workload(
    name="bwaves_jacobian",
    category="casestudy",
    source_fn=bwaves_jacobian_source,
    default_params={"nx": 10, "ny": 6, "nz": 4},
    analyze_loops=["jac_k", "jac_i"],
    description="bwaves flux-Jacobian loop, original (5,5,nx,ny,nz) layout.",
    models="410.bwaves jacobian_lam.f:30, paper Listing 7 (original).",
))

register(Workload(
    name="bwaves_transformed",
    category="casestudy",
    source_fn=bwaves_transformed_source,
    default_params={"nx": 10, "ny": 6, "nz": 4},
    analyze_loops=["jac_k", "jac_i"],
    description="bwaves Jacobian after layout transposition + peeling.",
    models="Paper Listing 7 (transformed).",
))

register(Workload(
    name="milc_su3mv",
    category="casestudy",
    source_fn=milc_source,
    default_params={"sites": 96},
    analyze_loops=["sites_loop"],
    description="milc 3x3 complex matrix-vector product, AoS layout.",
    models="433.milc quark_stuff.c:1452, paper Listing 8 (original).",
))

register(Workload(
    name="milc_transformed",
    category="casestudy",
    source_fn=milc_transformed_source,
    default_params={"sites": 96},
    analyze_loops=["outer_i", "sites_vec"],
    description="milc matrix-vector product after AoS -> SoA rewrite.",
    models="Paper Listing 8 (transformed).",
))

register(Workload(
    name="gromacs_inner",
    category="casestudy",
    source_fn=gromacs_source,
    default_params={"pairs": 64, "natoms": 128},
    analyze_loops=["force_k"],
    description="gromacs nonbonded force loop with jjnr indirection.",
    models="435.gromacs innerf.f:3960, paper Listing 9 (original).",
))

register(Workload(
    name="gromacs_transformed",
    category="casestudy",
    source_fn=gromacs_transformed_source,
    default_params={"pairs": 64, "natoms": 128},
    analyze_loops=["force_blk", "compute"],
    description="gromacs loop strip-mined and distributed; compute "
                "phase vectorizes.",
    models="Paper Listing 9 (transformed).",
))
