"""UTDSP MULT — dense matrix multiply.

Array version iterates i/k/j with j innermost so the B and C accesses
are stride-1; icc vectorizes the j loop (50.4% packed in the paper,
diluted by the rest of the program).  The pointer version walks row
pointers and is refused.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register

_DECLS = """
double A[{n}][{n}];
double B[{n}][{n}];
double C[{n}][{n}];
"""

_INIT = """
  int i, j, k;
  for (i = 0; i < {n}; i++)
    for (j = 0; j < {n}; j++) {{
      A[i][j] = 0.01 * (double)(i + j);
      B[i][j] = 0.02 * (double)(i - j);
      C[i][j] = 0.0;
    }}
"""


def mult_array_source(n: int = 14) -> str:
    return f"""
// UTDSP MULT, array version (ikj order, stride-1 inner loop).
{_DECLS.format(n=n)}
int main() {{
{_INIT.format(n=n)}
  mm_i: for (i = 0; i < {n}; i++) {{
    mm_k: for (k = 0; k < {n}; k++) {{
      mm_j: for (j = 0; j < {n}; j++) {{
        C[i][j] += A[i][k] * B[k][j];
      }}
    }}
  }}
  return 0;
}}
"""


def mult_pointer_source(n: int = 14) -> str:
    return f"""
// UTDSP MULT, pointer version.
{_DECLS.format(n=n)}
int main() {{
{_INIT.format(n=n)}
  mm_i: for (i = 0; i < {n}; i++) {{
    mm_k: for (k = 0; k < {n}; k++) {{
      double *pc = &C[i][0];
      double *pb = &B[k][0];
      double a = A[i][k];
      mm_j: for (j = 0; j < {n}; j++) {{
        *pc += a * *pb;
        pc++;
        pb++;
      }}
    }}
  }}
  return 0;
}}
"""


register(Workload(
    name="utdsp_mult_array",
    category="utdsp",
    source_fn=mult_array_source,
    default_params={"n": 14},
    analyze_loops=["mm_i"],
    description="Matrix multiply, array subscripts.",
    models="UTDSP MULT (array).",
))

register(Workload(
    name="utdsp_mult_pointer",
    category="utdsp",
    source_fn=mult_pointer_source,
    default_params={"n": 14},
    analyze_loops=["mm_i"],
    description="Matrix multiply, walking pointers.",
    models="UTDSP MULT (pointer).",
))
