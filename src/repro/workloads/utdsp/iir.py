"""UTDSP IIR — cascaded biquad infinite impulse response filter.

Every section carries state (d0/d1) across samples and the signal
threads sequentially through the sections, so neither icc nor the
dynamic model finds vector partitions along the recurrence; the paper
reports 0% packed for both styles, with moderate unit potential from the
independent per-section products.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register

_DECLS = """
double x[{nsamp}];
double y[{nsamp}];
double b0[{nsec}];
double b1[{nsec}];
double b2[{nsec}];
double a1[{nsec}];
double a2[{nsec}];
double d0[{nsec}];
double d1[{nsec}];
"""

_INIT = """
  int n, s;
  for (n = 0; n < {nsamp}; n++)
    x[n] = 0.01 * (double)(n % 13) - 0.03;
  for (s = 0; s < {nsec}; s++) {{
    b0[s] = 0.2 + 0.01 * (double)s;
    b1[s] = 0.1;
    b2[s] = 0.05;
    a1[s] = 0.3 - 0.01 * (double)s;
    a2[s] = 0.1;
    d0[s] = 0.0;
    d1[s] = 0.0;
  }}
"""


def iir_array_source(nsamp: int = 48, nsec: int = 6) -> str:
    return f"""
// UTDSP IIR, array version (cascade of biquads, direct form II).
{_DECLS.format(nsamp=nsamp, nsec=nsec)}
int main() {{
{_INIT.format(nsamp=nsamp, nsec=nsec)}
  iir_n: for (n = 0; n < {nsamp}; n++) {{
    double in = x[n];
    iir_s: for (s = 0; s < {nsec}; s++) {{
      double t = in - a1[s] * d0[s] - a2[s] * d1[s];
      double out = b0[s] * t + b1[s] * d0[s] + b2[s] * d1[s];
      d1[s] = d0[s];
      d0[s] = t;
      in = out;
    }}
    y[n] = in;
  }}
  return 0;
}}
"""


def iir_pointer_source(nsamp: int = 48, nsec: int = 6) -> str:
    return f"""
// UTDSP IIR, pointer version.
{_DECLS.format(nsamp=nsamp, nsec=nsec)}
int main() {{
{_INIT.format(nsamp=nsamp, nsec=nsec)}
  iir_n: for (n = 0; n < {nsamp}; n++) {{
    double in = x[n];
    double *pb0 = b0;
    double *pb1 = b1;
    double *pb2 = b2;
    double *pa1 = a1;
    double *pa2 = a2;
    double *pd0 = d0;
    double *pd1 = d1;
    iir_s: for (s = 0; s < {nsec}; s++) {{
      double t = in - *pa1 * *pd0 - *pa2 * *pd1;
      double out = *pb0 * t + *pb1 * *pd0 + *pb2 * *pd1;
      *pd1 = *pd0;
      *pd0 = t;
      in = out;
      pb0++;
      pb1++;
      pb2++;
      pa1++;
      pa2++;
      pd0++;
      pd1++;
    }}
    y[n] = in;
  }}
  return 0;
}}
"""


register(Workload(
    name="utdsp_iir_array",
    category="utdsp",
    source_fn=iir_array_source,
    default_params={"nsamp": 48, "nsec": 6},
    analyze_loops=["iir_n"],
    description="Cascaded biquad IIR filter, array subscripts.",
    models="UTDSP IIR (array).",
))

register(Workload(
    name="utdsp_iir_pointer",
    category="utdsp",
    source_fn=iir_pointer_source,
    default_params={"nsamp": 48, "nsec": 6},
    analyze_loops=["iir_n"],
    description="Cascaded biquad IIR filter, walking pointers.",
    models="UTDSP IIR (pointer).",
))
