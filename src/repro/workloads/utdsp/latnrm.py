"""UTDSP LATNRM — normalized lattice filter.

The per-sample lattice recursion is order-sequential (low concurrency —
the paper reports 7.4), with only a small normalization loop icc can
pack (7.8-8.2% packed).  Unit potential comes from the independent
per-stage products across samples.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register

_DECLS = """
double x[{nsamp}];
double y[{nsamp}];
double kcoef[{order}];
double vcoef[{order}];
double state[{order}];
double scale[{nsamp}];
"""

_INIT = """
  int n, s;
  for (n = 0; n < {nsamp}; n++)
    x[n] = 0.01 * (double)(n % 9) - 0.02;
  for (s = 0; s < {order}; s++) {{
    kcoef[s] = 0.3 / (double)(s + 1);
    vcoef[s] = 0.2 / (double)(s + 2);
    state[s] = 0.0;
  }}
"""


def latnrm_array_source(nsamp: int = 40, order: int = 8) -> str:
    return f"""
// UTDSP LATNRM, array version.
{_DECLS.format(nsamp=nsamp, order=order)}
int main() {{
{_INIT.format(nsamp=nsamp, order=order)}
  sample_n: for (n = 0; n < {nsamp}; n++) {{
    double top = x[n];
    double bot;
    double acc = 0.0;
    lat_s: for (s = 0; s < {order}; s++) {{
      double f = top - kcoef[s] * state[s];
      bot = state[s] + kcoef[s] * f;
      state[s] = bot;
      top = f;
      acc += vcoef[s] * bot;
    }}
    y[n] = acc;
  }}
  // Normalization pass: the one part icc packs.
  norm_n: for (n = 0; n < {nsamp}; n++) {{
    scale[n] = y[n] * 0.125;
  }}
  return 0;
}}
"""


def latnrm_pointer_source(nsamp: int = 40, order: int = 8) -> str:
    return f"""
// UTDSP LATNRM, pointer version.
{_DECLS.format(nsamp=nsamp, order=order)}
int main() {{
{_INIT.format(nsamp=nsamp, order=order)}
  sample_n: for (n = 0; n < {nsamp}; n++) {{
    double top = x[n];
    double bot;
    double acc = 0.0;
    double *pk = kcoef;
    double *pst = state;
    double *pv = vcoef;
    lat_s: for (s = 0; s < {order}; s++) {{
      double f = top - *pk * *pst;
      bot = *pst + *pk * f;
      *pst = bot;
      top = f;
      acc += *pv * bot;
      pk++;
      pst++;
      pv++;
    }}
    y[n] = acc;
  }}
  double *py = y;
  double *psc = scale;
  norm_n: for (n = 0; n < {nsamp}; n++) {{
    *psc = *py * 0.125;
    py++;
    psc++;
  }}
  return 0;
}}
"""


register(Workload(
    name="utdsp_latnrm_array",
    category="utdsp",
    source_fn=latnrm_array_source,
    default_params={"nsamp": 40, "order": 8},
    analyze_loops=["sample_n"],
    description="Normalized lattice filter, array subscripts.",
    models="UTDSP LATNRM (array).",
))

register(Workload(
    name="utdsp_latnrm_pointer",
    category="utdsp",
    source_fn=latnrm_pointer_source,
    default_params={"nsamp": 40, "order": 8},
    analyze_loops=["sample_n"],
    description="Normalized lattice filter, walking pointers.",
    models="UTDSP LATNRM (pointer).",
))
