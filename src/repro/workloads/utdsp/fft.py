"""UTDSP FFT — radix-2 decimation-in-time transform.

The model keeps the three phases of the UTDSP code with their
vectorization behaviour:

- bit-reversal permutation with input scaling (irregular subscripts —
  never vectorized);
- per-stage twiddle generation by recurrence (serial chain — never
  vectorized);
- butterfly combination loops, written ping-pong with the low/high
  halves distributed into separate loops (stride-1 — icc packs the array
  version, refuses the pointer version).

This yields the paper's "partially packed" array FFT and 0%-packed
pointer FFT with style-invariant dynamic metrics.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register


def _decls(n: int, stages: int) -> str:
    return f"""
double inr[{n}];
double xr[{n}];
double xi[{n}];
double yr[{n}];
double yi[{n}];
double twr[{stages}][{n // 2}];
double twi[{stages}][{n // 2}];
int br[{n}];
"""


def _init(n: int, stages: int) -> str:
    return f"""
  int i, st, g, j;
  for (i = 0; i < {n}; i++) {{
    inr[i] = 0.01 * (double)(i % 15) - 0.04;
    xi[i] = 0.0;
    yi[i] = 0.0;
  }}
  // Bit-reversal table.
  for (i = 0; i < {n}; i++) {{
    int v = i;
    int r = 0;
    for (st = 0; st < {stages}; st++) {{
      r = r * 2 + v % 2;
      v = v / 2;
    }}
    br[i] = r;
  }}
"""


_TWIDDLE_GEN = """
  // Twiddle generation: a serial product recurrence per stage.
  tw_st: for (st = 0; st < {stages}; st++) {{
    double cr = 1.0 - 0.002 * (double)(st + 1);
    double ci = 0.05 / (double)(st + 1);
    twr[st][0] = 1.0;
    twi[st][0] = 0.0;
    tw_j: for (j = 1; j < {half}; j++) {{
      twr[st][j] = twr[st][j-1] * cr - twi[st][j-1] * ci;
      twi[st][j] = twr[st][j-1] * ci + twi[st][j-1] * cr;
    }}
  }}
"""


def fft_array_source(n: int = 32) -> str:
    stages = n.bit_length() - 1
    half = n // 2
    return f"""
// UTDSP FFT, array version (ping-pong butterflies).
{_decls(n, stages)}
int main() {{
{_init(n, stages)}
{_TWIDDLE_GEN.format(stages=stages, half=half)}
  // Bit-reversal with scaling: irregular store pattern.
  bitrev: for (i = 0; i < {n}; i++) {{
    xr[br[i]] = inr[i] * 0.5 + 0.125;
  }}
  stage_loop: for (st = 0; st < {stages}; st++) {{
    int m = 1 << st;
    int groups = {n} / (2 * m);
    if (st % 2 == 0) {{
      grp_e: for (g = 0; g < groups; g++) {{
        int base = 2 * g * m;
        bf_lo_e: for (j = 0; j < m; j++) {{
          double tr = twr[st][j] * xr[base + m + j]
                    - twi[st][j] * xi[base + m + j];
          double ti = twr[st][j] * xi[base + m + j]
                    + twi[st][j] * xr[base + m + j];
          yr[base + j] = xr[base + j] + tr;
          yi[base + j] = xi[base + j] + ti;
        }}
        bf_hi_e: for (j = 0; j < m; j++) {{
          double tr = twr[st][j] * xr[base + m + j]
                    - twi[st][j] * xi[base + m + j];
          double ti = twr[st][j] * xi[base + m + j]
                    + twi[st][j] * xr[base + m + j];
          yr[base + m + j] = xr[base + j] - tr;
          yi[base + m + j] = xi[base + j] - ti;
        }}
      }}
    }} else {{
      grp_o: for (g = 0; g < groups; g++) {{
        int base = 2 * g * m;
        bf_lo_o: for (j = 0; j < m; j++) {{
          double tr = twr[st][j] * yr[base + m + j]
                    - twi[st][j] * yi[base + m + j];
          double ti = twr[st][j] * yi[base + m + j]
                    + twi[st][j] * yr[base + m + j];
          xr[base + j] = yr[base + j] + tr;
          xi[base + j] = yi[base + j] + ti;
        }}
        bf_hi_o: for (j = 0; j < m; j++) {{
          double tr = twr[st][j] * yr[base + m + j]
                    - twi[st][j] * yi[base + m + j];
          double ti = twr[st][j] * yi[base + m + j]
                    + twi[st][j] * yr[base + m + j];
          xr[base + m + j] = yr[base + j] - tr;
          xi[base + m + j] = yi[base + j] - ti;
        }}
      }}
    }}
  }}
  return 0;
}}
"""


def fft_pointer_source(n: int = 32) -> str:
    stages = n.bit_length() - 1
    half = n // 2
    return f"""
// UTDSP FFT, pointer version (walking-pointer butterflies).
{_decls(n, stages)}
int main() {{
{_init(n, stages)}
{_TWIDDLE_GEN.format(stages=stages, half=half)}
  bitrev: for (i = 0; i < {n}; i++) {{
    xr[br[i]] = inr[i] * 0.5 + 0.125;
  }}
  stage_loop: for (st = 0; st < {stages}; st++) {{
    int m = 1 << st;
    int groups = {n} / (2 * m);
    if (st % 2 == 0) {{
      grp_e: for (g = 0; g < groups; g++) {{
        int base = 2 * g * m;
        double *pwr = &twr[st][0];
        double *pwi = &twi[st][0];
        double *plr = &xr[base];
        double *pli = &xi[base];
        double *phr = &xr[base + m];
        double *phi = &xi[base + m];
        double *por = &yr[base];
        double *poi = &yi[base];
        bf_lo_e: for (j = 0; j < m; j++) {{
          double tr = *pwr * *phr - *pwi * *phi;
          double ti = *pwr * *phi + *pwi * *phr;
          *por = *plr + tr;
          *poi = *pli + ti;
          pwr++; pwi++; plr++; pli++; phr++; phi++; por++; poi++;
        }}
        pwr = &twr[st][0];
        pwi = &twi[st][0];
        plr = &xr[base];
        pli = &xi[base];
        phr = &xr[base + m];
        phi = &xi[base + m];
        por = &yr[base + m];
        poi = &yi[base + m];
        bf_hi_e: for (j = 0; j < m; j++) {{
          double tr = *pwr * *phr - *pwi * *phi;
          double ti = *pwr * *phi + *pwi * *phr;
          *por = *plr - tr;
          *poi = *pli - ti;
          pwr++; pwi++; plr++; pli++; phr++; phi++; por++; poi++;
        }}
      }}
    }} else {{
      grp_o: for (g = 0; g < groups; g++) {{
        int base = 2 * g * m;
        double *pwr = &twr[st][0];
        double *pwi = &twi[st][0];
        double *plr = &yr[base];
        double *pli = &yi[base];
        double *phr = &yr[base + m];
        double *phi = &yi[base + m];
        double *por = &xr[base];
        double *poi = &xi[base];
        bf_lo_o: for (j = 0; j < m; j++) {{
          double tr = *pwr * *phr - *pwi * *phi;
          double ti = *pwr * *phi + *pwi * *phr;
          *por = *plr + tr;
          *poi = *pli + ti;
          pwr++; pwi++; plr++; pli++; phr++; phi++; por++; poi++;
        }}
        pwr = &twr[st][0];
        pwi = &twi[st][0];
        plr = &yr[base];
        pli = &yi[base];
        phr = &yr[base + m];
        phi = &yi[base + m];
        por = &xr[base + m];
        poi = &xi[base + m];
        bf_hi_o: for (j = 0; j < m; j++) {{
          double tr = *pwr * *phr - *pwi * *phi;
          double ti = *pwr * *phi + *pwi * *phr;
          *por = *plr - tr;
          *poi = *pli - ti;
          pwr++; pwi++; plr++; pli++; phr++; phi++; por++; poi++;
        }}
      }}
    }}
  }}
  return 0;
}}
"""


register(Workload(
    name="utdsp_fft_array",
    category="utdsp",
    source_fn=fft_array_source,
    default_params={"n": 32},
    analyze_loops=["stage_loop"],
    description="Radix-2 FFT, array subscripts.",
    models="UTDSP FFT (array).",
))

register(Workload(
    name="utdsp_fft_pointer",
    category="utdsp",
    source_fn=fft_pointer_source,
    default_params={"n": 32},
    analyze_loops=["stage_loop"],
    description="Radix-2 FFT, walking pointers.",
    models="UTDSP FFT (pointer).",
))
