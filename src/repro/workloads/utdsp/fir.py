"""UTDSP FIR — finite impulse response filter.

Array version: a textbook multiply-accumulate loop that icc vectorizes
(99.8% packed via reduction vectorization).  Pointer version: the same
MAC through walking pointers — icc refuses (0% packed), the dynamic
analysis is unchanged.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register

_COMMON_DECLS = """
double x[{nx}];
double h[{ntap}];
double y[{nout}];
"""

_COMMON_INIT = """
  int n, k;
  for (n = 0; n < {nx}; n++)
    x[n] = 0.01 * (double)(n % 17) - 0.05;
  for (k = 0; k < {ntap}; k++)
    h[k] = 0.1 / (double)(k + 1);
"""


def fir_array_source(ntap: int = 16, nout: int = 64) -> str:
    nx = ntap + nout
    decls = _COMMON_DECLS.format(nx=nx, ntap=ntap, nout=nout)
    init = _COMMON_INIT.format(nx=nx, ntap=ntap)
    return f"""
// UTDSP FIR, array version.
{decls}
int main() {{
{init}
  fir_n: for (n = 0; n < {nout}; n++) {{
    double sum = 0.0;
    fir_k: for (k = 0; k < {ntap}; k++) {{
      sum += h[k] * x[n + k];
    }}
    y[n] = sum;
  }}
  return 0;
}}
"""


def fir_pointer_source(ntap: int = 16, nout: int = 64) -> str:
    nx = ntap + nout
    decls = _COMMON_DECLS.format(nx=nx, ntap=ntap, nout=nout)
    init = _COMMON_INIT.format(nx=nx, ntap=ntap)
    return f"""
// UTDSP FIR, pointer version.
{decls}
int main() {{
{init}
  double *py = y;
  fir_n: for (n = 0; n < {nout}; n++) {{
    double sum = 0.0;
    double *ph = h;
    double *px = &x[n];
    fir_k: for (k = 0; k < {ntap}; k++) {{
      sum += *ph * *px;
      ph++;
      px++;
    }}
    *py = sum;
    py++;
  }}
  return 0;
}}
"""


register(Workload(
    name="utdsp_fir_array",
    category="utdsp",
    source_fn=fir_array_source,
    default_params={"ntap": 16, "nout": 64},
    analyze_loops=["fir_n"],
    description="FIR filter, array subscripts.",
    models="UTDSP FIR (array).",
))

register(Workload(
    name="utdsp_fir_pointer",
    category="utdsp",
    source_fn=fir_pointer_source,
    default_params={"ntap": 16, "nout": 64},
    analyze_loops=["fir_n"],
    description="FIR filter, walking pointers.",
    models="UTDSP FIR (pointer).",
))
