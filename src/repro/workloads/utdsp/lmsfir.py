"""UTDSP LMSFIR — adaptive FIR filter (least-mean-squares).

Each sample convolves the coefficient vector *backward* through the
input window (``x[n - k]`` — a negative stride the static vectorizer
refuses), derives the error, and updates every coefficient with it.  The
error feedback serializes samples: the paper reports 0% packed for both
styles with very low concurrency (2.7) and ~48% unit potential from the
independent per-tap products.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.loader import register

_DECLS = """
double x[{nx}];
double d[{nsamp}];
double coef[{ntap}];
double y[{nsamp}];
"""

_INIT = """
  int n, k;
  for (n = 0; n < {nx}; n++)
    x[n] = 0.01 * (double)(n % 11) - 0.02;
  for (n = 0; n < {nsamp}; n++)
    d[n] = 0.008 * (double)(n % 7);
  for (k = 0; k < {ntap}; k++)
    coef[k] = 0.05 / (double)(k + 1);
  double mu = 0.02;
"""


def lmsfir_array_source(nsamp: int = 40, ntap: int = 12) -> str:
    nx = nsamp + ntap
    top = ntap - 1
    return f"""
// UTDSP LMSFIR, array version (backward convolution window).
{_DECLS.format(nx=nx, nsamp=nsamp, ntap=ntap)}
int main() {{
{_INIT.format(nx=nx, nsamp=nsamp, ntap=ntap)}
  lms_n: for (n = 0; n < {nsamp}; n++) {{
    double sum = 0.0;
    mac_k: for (k = 0; k < {ntap}; k++) {{
      sum += coef[k] * x[n + {top} - k];
    }}
    double err = (d[n] - sum) * mu;
    upd_k: for (k = 0; k < {ntap}; k++) {{
      coef[k] = coef[k] + err * x[n + {top} - k];
    }}
    y[n] = sum;
  }}
  return 0;
}}
"""


def lmsfir_pointer_source(nsamp: int = 40, ntap: int = 12) -> str:
    nx = nsamp + ntap
    top = ntap - 1
    return f"""
// UTDSP LMSFIR, pointer version (decrementing data pointer).
{_DECLS.format(nx=nx, nsamp=nsamp, ntap=ntap)}
int main() {{
{_INIT.format(nx=nx, nsamp=nsamp, ntap=ntap)}
  lms_n: for (n = 0; n < {nsamp}; n++) {{
    double sum = 0.0;
    double *pc = coef;
    double *px = &x[n + {top}];
    mac_k: for (k = 0; k < {ntap}; k++) {{
      sum += *pc * *px;
      pc++;
      px--;
    }}
    double err = (d[n] - sum) * mu;
    double *pc2 = coef;
    double *px2 = &x[n + {top}];
    upd_k: for (k = 0; k < {ntap}; k++) {{
      *pc2 = *pc2 + err * *px2;
      pc2++;
      px2--;
    }}
    y[n] = sum;
  }}
  return 0;
}}
"""


register(Workload(
    name="utdsp_lmsfir_array",
    category="utdsp",
    source_fn=lmsfir_array_source,
    default_params={"nsamp": 40, "ntap": 12},
    analyze_loops=["lms_n"],
    description="Adaptive LMS FIR filter, array subscripts.",
    models="UTDSP LMSFIR (array).",
))

register(Workload(
    name="utdsp_lmsfir_pointer",
    category="utdsp",
    source_fn=lmsfir_pointer_source,
    default_params={"nsamp": 40, "ntap": 12},
    analyze_loops=["lms_n"],
    description="Adaptive LMS FIR filter, walking pointers.",
    models="UTDSP LMSFIR (pointer).",
))
