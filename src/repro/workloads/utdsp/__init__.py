"""UTDSP benchmark kernels, array and pointer versions (Table 3).

The UTDSP suite provides each DSP kernel in two functionally identical
styles: array subscripts and walking pointers.  The paper uses it to show
that (a) the dynamic analysis is invariant to the style, while (b) icc
fails to vectorize the pointer versions (§4.3).

``TABLE3_ROWS`` records the paper's values per kernel/style for the
Table-3 bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.workloads.utdsp import fft, fir, iir, latnrm, lmsfir, mult

ALL_UTDSP_MODULES = [fft, fir, iir, latnrm, lmsfir, mult]


@dataclass(frozen=True)
class Table3Row:
    kernel: str               # "FIR"
    style: str                # "array" | "pointer"
    workload: str             # registered workload name
    loop: str                 # analyzed loop label
    #: paper values: (packed, concur, unit_pct, unit_sz, nonunit_pct,
    #: nonunit_sz)
    paper: Tuple[float, float, float, float, float, float]


TABLE3_ROWS: Dict[str, Table3Row] = {}


def _add(row: Table3Row) -> None:
    TABLE3_ROWS[f"{row.kernel}/{row.style}"] = row


_add(Table3Row("FFT", "array", "utdsp_fft_array", "stage_loop",
               (49.9, 568.9, 79.3, 24.1, 12.2, 2.0)))
_add(Table3Row("FFT", "pointer", "utdsp_fft_pointer", "stage_loop",
               (0.0, 568.9, 79.3, 24.1, 12.2, 2.0)))
_add(Table3Row("FIR", "array", "utdsp_fir_array", "fir_n",
               (99.8, 99.9, 100.0, 57.4, 0.0, 0.0)))
_add(Table3Row("FIR", "pointer", "utdsp_fir_pointer", "fir_n",
               (0.0, 99.9, 100.0, 57.4, 0.0, 0.0)))
_add(Table3Row("IIR", "array", "utdsp_iir_array", "iir_n",
               (0.0, 43.6, 64.8, 14.3, 15.6, 8.9)))
_add(Table3Row("IIR", "pointer", "utdsp_iir_pointer", "iir_n",
               (0.0, 43.6, 64.8, 14.3, 15.6, 8.9)))
_add(Table3Row("LATNRM", "array", "utdsp_latnrm_array", "sample_n",
               (7.8, 7.4, 74.6, 23.9, 0.0, 0.0)))
_add(Table3Row("LATNRM", "pointer", "utdsp_latnrm_pointer", "sample_n",
               (8.2, 7.4, 74.6, 23.9, 0.0, 0.0)))
_add(Table3Row("LMSFIR", "array", "utdsp_lmsfir_array", "lms_n",
               (0.0, 2.7, 48.3, 22.1, 16.5, 21.8)))
_add(Table3Row("LMSFIR", "pointer", "utdsp_lmsfir_pointer", "lms_n",
               (0.0, 2.8, 49.4, 28.0, 16.2, 21.9)))
_add(Table3Row("MULT", "array", "utdsp_mult_array", "mm_i",
               (50.4, 181.9, 100.0, 18.2, 0.0, 0.0)))
_add(Table3Row("MULT", "pointer", "utdsp_mult_pointer", "mm_i",
               (0.0, 181.9, 100.0, 18.2, 0.0, 0.0)))

__all__ = ["ALL_UTDSP_MODULES", "TABLE3_ROWS", "Table3Row"]
