"""Workload kernels: the programs the experiments run.

The paper evaluates on SPEC CFP2006 hot loops, the UTDSP suite, and two
standalone kernels.  SPEC sources and inputs cannot be shipped, so each
SPEC benchmark is modeled by a *pattern-faithful* mini-C kernel that
reproduces the dependence structure, memory layout, and control flow the
paper describes for its hot loops (see each module's docstring for the
mapping).  UTDSP kernels and the standalone kernels are implemented
directly, in both array and pointer styles where the paper compares them.
"""

from repro.workloads.base import Workload, analyze_workload
from repro.workloads.loader import (
    get_workload,
    list_workloads,
    register,
)

__all__ = [
    "Workload",
    "analyze_workload",
    "get_workload",
    "list_workloads",
    "register",
]
