"""Workload descriptors and the analysis driver they share."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.pipeline import run_loop_analyses, select_instance_subtrace
from repro.analysis.report import BenchmarkReport
from repro.errors import WorkloadError
from repro.frontend import parse_source
from repro.frontend.lower import lower
from repro.interp.interpreter import DEFAULT_FUEL, Interpreter
from repro.ir.verifier import verify_module
from repro.obs import get_status_bus, get_telemetry
from repro.profiler.hotloops import profile_loops
from repro.vectorizer.autovec import VectorizerConfig, analyze_program_loops
from repro.vectorizer.packed import percent_packed

__all__ = ["Workload", "analyze_workload", "select_instance_subtrace"]


def analyze_workload(
    source: str,
    benchmark: str,
    loops: Sequence[str],
    entry: str = "main",
    args: Sequence = (),
    instance: int = 0,
    vec_config: Optional[VectorizerConfig] = None,
    include_integer: bool = False,
    relax_reductions: bool = False,
    fuel: int = DEFAULT_FUEL,
    jobs: int = 1,
    tel=None,
    spill_dir: Optional[str] = None,
    segment_rows: Optional[int] = None,
    compile_loops: bool = True,
    compile_threshold: Optional[int] = None,
) -> BenchmarkReport:
    """Analyze the named ``loops`` of one program (compile once, profile
    once, then per-loop fused windowed analysis — the §4.1 methodology
    with an explicit loop list instead of hot-loop discovery).

    ``jobs > 1`` fans the per-loop re-runs across a process pool with
    byte-identical results (see
    :func:`repro.analysis.pipeline.run_loop_analyses`).
    ``spill_dir``/``segment_rows`` run the windowed traces out-of-core
    through the segment store — reports stay bit-identical."""
    if tel is None:
        tel = get_telemetry()
    bus = get_status_bus()
    with tel.span("analysis.total"):
        bus.phase("frontend")
        with tel.span("frontend.parse_lower"):
            program, analyzer = parse_source(source)
            module = lower(analyzer, benchmark)
            verify_module(module)
            if vec_config is None:
                vec_config = VectorizerConfig()
            decisions = analyze_program_loops(program, analyzer, vec_config)

        bus.phase("profile")
        with tel.span("profile.run"):
            interp = Interpreter(module, fuel=fuel,
                                 compile_loops=compile_loops,
                                 compile_threshold=compile_threshold)
            interp.run(entry, args)
            profiles = profile_loops(module, interp)
        if tel.enabled:
            tel.count("interp.runs")
            tel.count("interp.instructions", interp.executed_instructions)

        infos = []
        for loop_name in loops:
            info = module.loop_by_name(loop_name)
            if info is None:
                known = ", ".join(li.name for li in module.loops.values())
                raise WorkloadError(
                    f"{benchmark}: no loop named {loop_name!r} "
                    f"(known: {known})"
                )
            infos.append(info)

        loop_reports = run_loop_analyses(
            source, benchmark, module, list(loops), entry, args, instance,
            include_integer, relax_reductions, fuel, jobs, tel=tel,
            spill_dir=spill_dir, segment_rows=segment_rows,
            compile_loops=compile_loops,
            compile_threshold=compile_threshold,
        )
        report = BenchmarkReport(benchmark=benchmark)
        for info, loop_report in zip(infos, loop_reports):
            loop_report.benchmark = benchmark
            prof = profiles.get(info.loop_id)
            if prof is not None:
                loop_report.percent_cycles = prof.percent_cycles
            loop_report.percent_packed = percent_packed(
                module, interp, decisions, info.loop_id, vec_config,
                profiles
            )
            report.loops.append(loop_report)
        bus.phase("report")
        tel.record_memory()
    return report


@dataclass
class Workload:
    """A registered kernel: source generator plus analysis targets.

    ``models`` documents which paper benchmark/loop the kernel stands in
    for (the substitution record DESIGN.md requires).
    """

    name: str
    category: str  # "spec" | "utdsp" | "kernel" | "casestudy"
    source_fn: Callable[..., str]
    default_params: Dict = field(default_factory=dict)
    analyze_loops: List[str] = field(default_factory=list)
    entry: str = "main"
    description: str = ""
    models: str = ""

    def params(self, **overrides) -> Dict:
        merged = dict(self.default_params)
        for key, value in overrides.items():
            if key not in self.default_params:
                raise WorkloadError(
                    f"{self.name}: unknown parameter {key!r} "
                    f"(accepts {sorted(self.default_params)})"
                )
            merged[key] = value
        return merged

    def source(self, **overrides) -> str:
        return self.source_fn(**self.params(**overrides))

    def compile(self, **overrides):
        from repro.frontend.driver import compile_source

        return compile_source(self.source(**overrides), self.name)

    def analyze(self, instance: int = 0,
                vec_config: Optional[VectorizerConfig] = None,
                include_integer: bool = False,
                relax_reductions: bool = False,
                fuel: int = DEFAULT_FUEL,
                jobs: int = 1,
                spill_dir: Optional[str] = None,
                segment_rows: Optional[int] = None,
                compile_loops: bool = True,
                compile_threshold: Optional[int] = None,
                **overrides) -> BenchmarkReport:
        return analyze_workload(
            self.source(**overrides),
            self.name,
            self.analyze_loops,
            entry=self.entry,
            instance=instance,
            vec_config=vec_config,
            include_integer=include_integer,
            relax_reductions=relax_reductions,
            fuel=fuel,
            jobs=jobs,
            spill_dir=spill_dir,
            segment_rows=segment_rows,
            compile_loops=compile_loops,
            compile_threshold=compile_threshold,
        )
