"""The explain layer: turn the analyses' verdicts into evidence.

The paper's metrics say *how much* vectorization potential a loop has;
this package answers *why* it has no more than that, with concrete
dynamic witnesses pulled from the same one-pass artifacts the analyses
already computed:

- **dependence witnesses** (:mod:`.witnesses`) — the shortest DDG chain
  connecting two instances of the same static instruction in adjacent
  parallel partitions, i.e. the dependence that caps the partition size
  Algorithm 1 reports;
- **stride-break provenance** (:mod:`.strides`) — the concrete instance
  pair (with byte addresses) at each §3.2/§3.3 split point, plus the
  data-layout feature responsible (:func:`repro.runtime.layout.
  infer_stride_culprit`);
- **refusal cross-examination** (:mod:`.refusals`) — the static
  vectorizer's refusal reasons confronted with the dynamic evidence,
  each confirmed or contradicted by the trace.

:func:`explain_loop` (:mod:`.driver`) orchestrates all three over one
windowed loop instance and :mod:`.render` draws the terminal tree the
``vectra explain`` subcommand prints.
"""

from repro.explain.driver import ExplainReport, explain_loop
from repro.explain.refusals import RefusalFinding, cross_examine
from repro.explain.render import render_explain
from repro.explain.strides import StrideWitness, extract_stride_witnesses
from repro.explain.witnesses import (
    DependenceWitness,
    WitnessStep,
    extract_dependence_witnesses,
)

__all__ = [
    "DependenceWitness",
    "ExplainReport",
    "RefusalFinding",
    "StrideWitness",
    "WitnessStep",
    "cross_examine",
    "explain_loop",
    "extract_dependence_witnesses",
    "extract_stride_witnesses",
    "render_explain",
]
