"""``explain_loop``: one windowed run, every witness, one report.

The driver re-traces one instance of the loop through the fused
columnar path (the same :func:`repro.analysis.pipeline.windowed_loop_ddg`
the metrics pipeline uses), runs the batched Algorithm 1 scan ONCE, and
derives everything from that single artifact:

- the parallel partitions feed :func:`repro.analysis.metrics.loop_metrics`
  (via its ``partitions_by_sid`` fast path — no second scan);
- the kept :class:`~repro.analysis.timestamps.PackedScan` powers the
  backward witness walk (O(chain), not O(graph));
- the §3.2/§3.3 provenance out-params and the layout inverse mapping
  produce stride witnesses;
- the static vectorizer's refusal reasons are cross-examined against
  all of the above.

Every stage is span-instrumented (``explain.*``); the finished report
lands in the run report's optional ``explain`` mapping (schema /3) via
``tel.explain_section`` plus a flat numeric ``explain.<loop>`` section
for ``vectra compare`` gating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.candidates import candidate_sids
from repro.analysis.metrics import loop_metrics
from repro.analysis.pipeline import windowed_loop_ddg
from repro.analysis.report import LoopReport
from repro.analysis.timestamps import (
    packed_timestamp_scan,
    partitions_from_scan,
)
from repro.errors import AnalysisError
from repro.explain.refusals import RefusalFinding, cross_examine
from repro.explain.strides import StrideWitness, extract_stride_witnesses
from repro.explain.witnesses import (
    DependenceWitness,
    extract_dependence_witnesses,
)
from repro.interp.interpreter import DEFAULT_FUEL
from repro.ir.module import Module
from repro.obs import get_telemetry


@dataclass
class ExplainReport:
    """Everything ``vectra explain`` knows about one loop."""

    loop_name: str
    num_nodes: int
    num_edges: int
    num_candidate_sids: int
    num_memory_flow_edges: int
    dependence_witnesses: List[DependenceWitness] = field(
        default_factory=list
    )
    stride_witnesses: List[StrideWitness] = field(default_factory=list)
    refusals: List[RefusalFinding] = field(default_factory=list)
    metrics: Optional[LoopReport] = None

    def to_dict(self) -> dict:
        """JSON-safe payload for the run report's ``explain`` mapping."""
        out = {
            "loop": self.loop_name,
            "ddg_nodes": self.num_nodes,
            "ddg_edges": self.num_edges,
            "candidate_sids": self.num_candidate_sids,
            "memory_flow_edges": self.num_memory_flow_edges,
            "dependence_witnesses": [
                w.to_dict() for w in self.dependence_witnesses
            ],
            "stride_witnesses": [
                w.to_dict() for w in self.stride_witnesses
            ],
            "refusals": [f.to_dict() for f in self.refusals],
        }
        if self.metrics is not None:
            out["metrics"] = {
                "avg_concurrency": self.metrics.avg_concurrency,
                "percent_vec_unit": self.metrics.percent_vec_unit,
                "avg_vec_size_unit": self.metrics.avg_vec_size_unit,
                "percent_vec_nonunit": self.metrics.percent_vec_nonunit,
                "avg_vec_size_nonunit": self.metrics.avg_vec_size_nonunit,
            }
        return out

    def witness_ids(self) -> List[str]:
        return [w.witness_id for w in self.dependence_witnesses] + [
            w.witness_id for w in self.stride_witnesses
        ]


def explain_loop(
    module: Module,
    loop_name: str,
    reasons: Sequence[str] = (),
    entry: str = "main",
    args: Sequence = (),
    instance: int = 0,
    include_integer: bool = False,
    fuel: int = DEFAULT_FUEL,
    tel=None,
) -> ExplainReport:
    """Trace one instance of ``loop_name`` and extract all witnesses.

    ``reasons`` are the static vectorizer's refusal strings for this
    loop (typically :func:`repro.analysis.opportunities.subtree_reasons`)
    — empty means the cross-examination section is empty, the dynamic
    witnesses are still produced.
    """
    if tel is None:
        tel = get_telemetry()
    info = module.loop_by_name(loop_name)
    if info is None:
        known = ", ".join(li.name for li in module.loops.values())
        raise AnalysisError(
            f"no loop named {loop_name!r}; known loops: {known}"
        )
    tel.instant("explain.start", {"loop": loop_name})
    ddg, rows = windowed_loop_ddg(module, info.loop_id, loop_name,
                                  entry, args, instance, fuel, tel)
    sids = candidate_sids(ddg, include_integer)
    with tel.span("algorithm1"):
        scan = packed_timestamp_scan(ddg, sids)
        partitions_by_sid = (
            partitions_from_scan(ddg, scan) if sids else {}
        )
    if tel.enabled:
        tel.count("algorithm1.scans", 1 if sids else 0)
        tel.count("algorithm1.candidate_sids", len(sids))
        tel.count("algorithm1.lanes_packed", len(sids))
    metrics = loop_metrics(ddg, module, loop_name, include_integer,
                           tel=tel, partitions_by_sid=partitions_by_sid)
    with tel.span("explain.witness.dependence"):
        dep_witnesses = extract_dependence_witnesses(
            ddg, scan, partitions_by_sid, module
        )
    tel.instant("explain.witness.dependence.done",
                {"loop": loop_name, "witnesses": len(dep_witnesses)})
    with tel.span("explain.witness.stride"):
        stride_witnesses = extract_stride_witnesses(
            ddg, partitions_by_sid, module
        )
    tel.instant("explain.witness.stride.done",
                {"loop": loop_name, "witnesses": len(stride_witnesses)})
    with tel.span("explain.refusals"):
        mem_edges = ddg.memory_flow_edges()
        findings = cross_examine(ddg, list(reasons), dep_witnesses,
                                 stride_witnesses, partitions_by_sid)
    report = ExplainReport(
        loop_name=loop_name,
        num_nodes=len(ddg.sids),
        num_edges=ddg.num_edges,
        num_candidate_sids=len(sids),
        num_memory_flow_edges=len(mem_edges),
        dependence_witnesses=dep_witnesses,
        stride_witnesses=stride_witnesses,
        refusals=findings,
        metrics=metrics,
    )
    if tel.enabled:
        tel.count("explain.loops")
        tel.count("explain.dependence_witnesses", len(dep_witnesses))
        tel.count("explain.stride_witnesses", len(stride_witnesses))
        tel.count("explain.refusals_examined", len(findings))
        tel.section(f"explain.{loop_name}", {
            "loop": loop_name,
            "records_traced": rows,
            "dependence_witnesses": len(dep_witnesses),
            "stride_witnesses": len(stride_witnesses),
            "memory_flow_edges": len(mem_edges),
            "refusals_examined": len(findings),
            "refusals_contradicted": sum(
                1 for f in findings if f.verdict == "contradicted"
            ),
        })
        tel.explain_section(f"loop.{loop_name}", report.to_dict())
    tel.instant("explain.finish", {"loop": loop_name})
    return report
