"""Dependence witnesses: the chain that caps a parallel partition.

Algorithm 1 (§3.1) assigns instances of a static instruction *s* to
partitions by timestamp; the partition count equals the length of the
longest dependence chain through instances of *s*.  A *witness* makes
that chain concrete: the shortest DDG path from an instance of *s* at
timestamp ``T-1`` to one at timestamp ``T``, rendered as source-level
steps.  Showing one such path proves the partitioning could not have
been coarser — the dependence is real, not an artifact.

Extraction reuses the one batched scan the metrics already ran
(:class:`repro.analysis.timestamps.PackedScan`): walk CSR predecessors
backward from the frontier instance, visiting only nodes whose timestamp
on *s*'s lane is exactly ``T-1``.  Timestamps only become positive at
instances of *s*, so the walk must terminate at one; BFS order makes the
chain shortest.  Work is O(nodes at timestamp ``T-1``), typically a tiny
slice of the graph — no second scan.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.timestamps import PackedScan
from repro.ddg.graph import DDG
from repro.ir.instructions import OPCODE_INFO, Opcode

#: At most this many dependence witnesses per loop (one per static
#: instruction, longest chains first) — explain output stays readable.
MAX_DEPENDENCE_WITNESSES = 4


@dataclass(frozen=True)
class WitnessStep:
    """One node on a witness chain.  ``via_memory`` marks the edge *into*
    this step (from the previous, earlier step) as a store→load flow —
    the dependence travelled through memory, not a virtual register."""

    node: int
    sid: int
    mnemonic: str
    line: int
    via_memory: bool = False

    def to_dict(self) -> dict:
        return {
            "node": self.node,
            "sid": self.sid,
            "mnemonic": self.mnemonic,
            "line": self.line,
            "via_memory": self.via_memory,
        }


@dataclass
class DependenceWitness:
    """The shortest chain between two adjacent-timestamp instances of one
    static instruction — the proof its partitions cannot merge."""

    witness_id: str
    sid: int
    mnemonic: str
    line: int
    timestamp_from: int
    timestamp_to: int
    num_partitions: int
    steps: List[WitnessStep] = field(default_factory=list)

    @property
    def via_memory(self) -> bool:
        """True when any link of the chain flows through memory."""
        return any(s.via_memory for s in self.steps)

    def to_dict(self) -> dict:
        return {
            "witness_id": self.witness_id,
            "sid": self.sid,
            "mnemonic": self.mnemonic,
            "line": self.line,
            "timestamp_from": self.timestamp_from,
            "timestamp_to": self.timestamp_to,
            "num_partitions": self.num_partitions,
            "via_memory": self.via_memory,
            "steps": [s.to_dict() for s in self.steps],
        }


def _describe(module, ddg: DDG, sid: int):
    if module is not None:
        instr = module.instruction(sid)
        return instr.mnemonic, instr.line
    opcode = ddg.sid_opcodes.get(sid)
    if opcode is not None:
        return OPCODE_INFO[Opcode(opcode)].mnemonic, 0
    return "?", 0


def _shortest_chain(
    ddg: DDG, scan: PackedScan, sid: int, frontier_node: int, t: int
) -> Optional[List[int]]:
    """BFS backward from ``frontier_node`` (an instance of ``sid`` at
    timestamp ``t``) through predecessors at timestamp ``t - 1`` on
    ``sid``'s lane, stopping at the first instance of ``sid`` reached.
    Returns the chain in execution order (earlier instance first), or
    ``None`` if no predecessor sits at ``t - 1`` (cannot happen on a
    well-formed scan — defensive)."""
    indices = ddg.pred_indices
    offsets = ddg.pred_offsets
    sids = ddg.sids
    timestamp = scan.timestamp
    want = t - 1
    parent: Dict[int, int] = {}
    queue = deque()
    for j in range(offsets[frontier_node], offsets[frontier_node + 1]):
        p = indices[j]
        if p not in parent and timestamp(p, sid) == want:
            parent[p] = frontier_node
            queue.append(p)
    while queue:
        u = queue.popleft()
        if sids[u] == sid:
            chain = [u]
            while u != frontier_node:
                u = parent[u]
                chain.append(u)
            return chain
        for j in range(offsets[u], offsets[u + 1]):
            p = indices[j]
            if p not in parent and timestamp(p, sid) == want:
                parent[p] = u
                queue.append(p)
    return None


def extract_dependence_witnesses(
    ddg: DDG,
    scan: PackedScan,
    partitions_by_sid: Dict[int, Dict[int, List[int]]],
    module=None,
    limit: int = MAX_DEPENDENCE_WITNESSES,
) -> List[DependenceWitness]:
    """One witness per multi-partition static instruction, longest
    dependence chains first, capped at ``limit``.

    For each chosen sid the frontier is the first instance in the
    maximum-timestamp partition; the extracted chain connects it to some
    instance one timestamp earlier.
    """
    load = int(Opcode.LOAD)
    store = int(Opcode.STORE)
    chained = sorted(
        (
            (sid, parts)
            for sid, parts in partitions_by_sid.items()
            if len(parts) >= 2
        ),
        key=lambda item: (-len(item[1]), item[0]),
    )
    witnesses: List[DependenceWitness] = []
    for sid, parts in chained[: max(0, limit)]:
        t = max(parts)
        frontier = parts[t][0]
        chain = _shortest_chain(ddg, scan, sid, frontier, t)
        if chain is None:
            continue
        mnemonic, line = _describe(module, ddg, sid)
        steps: List[WitnessStep] = []
        opcodes = ddg.opcodes
        for idx, node in enumerate(chain):
            via_memory = (
                idx > 0
                and opcodes[node] == load
                and opcodes[chain[idx - 1]] == store
            )
            m, ln = _describe(module, ddg, ddg.sids[node])
            steps.append(WitnessStep(node=node, sid=ddg.sids[node],
                                     mnemonic=m, line=ln,
                                     via_memory=via_memory))
        witnesses.append(DependenceWitness(
            witness_id=f"dep:{mnemonic}@L{line}:sid{sid}",
            sid=sid,
            mnemonic=mnemonic,
            line=line,
            timestamp_from=t - 1,
            timestamp_to=t,
            num_partitions=len(parts),
            steps=steps,
        ))
    return witnesses
