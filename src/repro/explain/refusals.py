"""Refusal cross-examination: static excuses vs. dynamic evidence.

The static vectorizer's refusal reasons are conservative claims
("possible pointer aliasing", "loop-carried dependence"); the trace is
one concrete execution.  Each refusal is joined against the dynamic
artifacts the explain driver extracted and receives a verdict:

- ``confirmed`` — the trace exhibits the claimed blocker (a dependence
  witness chain, observed store→load flow, a non-unit stride break);
- ``contradicted`` — the trace shows its absence ("compiler refused:
  may-alias; trace shows zero store→load flow dependences"), i.e. the
  conservatism cost real vectorization *on this input*;
- ``structural`` — a shape property (control flow, inner loop, calls)
  one execution can neither prove nor refute;
- ``unsupported`` — the trace is silent either way.

A ``contradicted`` verdict is not a compiler bug: it marks exactly the
paper's use case 1, the spots where a programmer assertion (restrict,
ivdep) or runtime check would unlock the potential the dynamic metrics
measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.ddg.graph import DDG
from repro.vectorizer.autovec import reason_code


@dataclass
class RefusalFinding:
    """One refusal reason with its dynamic verdict and the witnesses
    backing it."""

    reason: str
    code: str
    verdict: str
    evidence: str
    witness_ids: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "reason": self.reason,
            "code": self.code,
            "verdict": self.verdict,
            "evidence": self.evidence,
            "witness_ids": list(self.witness_ids),
        }


#: Refusal codes about loop *shape*, untestable from one dynamic run.
_STRUCTURAL_CODES = frozenset({
    "control-flow", "inner-loop", "call", "non-canonical",
})

#: Refusal codes claiming a (possible) memory dependence.
_ALIAS_CODES = frozenset({"alias", "pointer-mutation"})

#: Refusal codes claiming a cross-iteration value dependence.
_DEPENDENCE_CODES = frozenset({"carried-dependence", "recurrence"})


def cross_examine(
    ddg: DDG,
    reasons: Sequence[str],
    dependence_witnesses: Sequence,
    stride_witnesses: Sequence,
    partitions_by_sid: Dict[int, Dict[int, List[int]]],
) -> List[RefusalFinding]:
    """Join every refusal reason against the extracted dynamic evidence."""
    mem_edges = ddg.memory_flow_edges()
    num_nodes = len(ddg.sids)
    dep_ids = [w.witness_id for w in dependence_witnesses]
    any_chain = any(
        len(parts) >= 2 for parts in partitions_by_sid.values()
    )
    unit_breaks = [w for w in stride_witnesses if w.kind == "unit-break"]
    nonunit = [w for w in stride_witnesses if w.kind == "nonunit-group"]

    findings: List[RefusalFinding] = []
    for reason in reasons:
        code = reason_code(reason)
        verdict = "unsupported"
        evidence = "trace is silent on this claim"
        witness_ids: List[str] = []
        if code in _STRUCTURAL_CODES:
            verdict = "structural"
            evidence = (
                "loop-shape property; a single execution can neither "
                "prove nor refute it"
            )
        elif code in _ALIAS_CODES:
            if mem_edges:
                verdict = "confirmed"
                evidence = (
                    f"{len(mem_edges)} store→load flow dependence(s) "
                    f"observed among {num_nodes} traced instances"
                )
            else:
                verdict = "contradicted"
                evidence = (
                    f"trace shows zero store→load flow dependences "
                    f"over {num_nodes} traced instances — the "
                    f"possible aliasing never materialized on this input"
                )
        elif code in _DEPENDENCE_CODES:
            if dep_ids:
                verdict = "confirmed"
                evidence = (
                    "dependence witness chain(s) connect adjacent "
                    "partitions of the instruction"
                )
                witness_ids = list(dep_ids)
            elif not any_chain:
                verdict = "contradicted"
                evidence = (
                    "every candidate instruction forms a single parallel "
                    "partition — no cross-iteration dependence chain "
                    "materialized"
                )
            else:
                verdict = "confirmed"
                evidence = (
                    "multiple parallel partitions observed (chain "
                    "witness not extracted)"
                )
        elif code == "nonunit-stride":
            if unit_breaks or nonunit:
                verdict = "confirmed"
                evidence = (
                    "stride-break witness(es) show the concrete non-unit "
                    "access pattern"
                )
                witness_ids = [w.witness_id for w in (unit_breaks + nonunit)]
            else:
                verdict = "contradicted"
                evidence = (
                    "all observed access strides were unit or zero — "
                    "the static stride bound was pessimistic for this run"
                )
        elif code in ("data-dependent-subscript", "irregular-subscript"):
            if not mem_edges and not dep_ids:
                verdict = "contradicted"
                evidence = (
                    f"irregular subscripts were dynamically independent: "
                    f"zero store→load flow dependences and no "
                    f"dependence chains over {num_nodes} instances"
                )
            elif mem_edges:
                verdict = "confirmed"
                evidence = (
                    f"{len(mem_edges)} store→load flow dependence(s) "
                    f"flowed through the irregular accesses"
                )
        findings.append(RefusalFinding(
            reason=reason, code=code, verdict=verdict,
            evidence=evidence, witness_ids=witness_ids,
        ))
    return findings
