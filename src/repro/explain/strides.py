"""Stride-break provenance: *which* access pair broke a run, and *why*.

The §3.2 unit-stride scan and the §3.3 waitlist scan report only sizes;
for a diagnosis the interesting artifact is the split point itself — the
two dynamic instances whose concrete byte addresses refused to be
contiguous — and the declared data layout feature those addresses imply
(:func:`repro.runtime.layout.infer_stride_culprit`): an AoS field
access stepping whole structs, a transposed index stepping whole rows.

Extraction rides on the out-params the analyses already expose
(``breaks`` / ``groups``) so the partitioning logic is untouched; this
module re-runs the two scans only over the partitions of the few sids
it reports on, bounded by :data:`MAX_STRIDE_WITNESSES`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.nonunit import NonunitGroup, nonunit_stride_subpartitions
from repro.analysis.stride import StrideBreak, unit_stride_subpartitions
from repro.ddg.graph import DDG

#: Per-loop cap on reported stride witnesses (first unit-stride break
#: plus the largest fixed-stride groups per instruction, then truncated).
MAX_STRIDE_WITNESSES = 6


@dataclass
class StrideWitness:
    """One split point with its concrete addresses and layout culprit.

    ``kind`` is ``unit-break`` (a §3.2 subpartition closed here) or
    ``nonunit-group`` (a §3.3 waitlist subpartition locked onto this
    stride).  ``addr_a``/``addr_b`` are the byte addresses of the tuple
    component that moved fastest; ``culprit`` is the JSON dict from
    :func:`repro.runtime.layout.infer_stride_culprit` for that pair."""

    witness_id: str
    sid: int
    mnemonic: str
    line: int
    kind: str
    node_a: int
    node_b: int
    tuple_a: Tuple[int, ...]
    tuple_b: Tuple[int, ...]
    stride: Tuple[int, ...]
    addr_a: int
    addr_b: int
    byte_stride: int
    group_size: int = 0
    culprit: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "witness_id": self.witness_id,
            "sid": self.sid,
            "mnemonic": self.mnemonic,
            "line": self.line,
            "kind": self.kind,
            "node_a": self.node_a,
            "node_b": self.node_b,
            "tuple_a": list(self.tuple_a),
            "tuple_b": list(self.tuple_b),
            "stride": list(self.stride),
            "addr_a": self.addr_a,
            "addr_b": self.addr_b,
            "byte_stride": self.byte_stride,
            "group_size": self.group_size,
            "culprit": self.culprit,
        }


def _dominant_component(
    stride: Tuple[int, ...], tup_a: Tuple[int, ...], tup_b: Tuple[int, ...]
) -> Optional[Tuple[int, int, int]]:
    """The fastest-moving tuple component: ``(byte_stride, addr_a,
    addr_b)``, skipping artificial address 0 — or ``None`` if every
    component is constant or artificial."""
    best = None
    for s, a, b in zip(stride, tup_a, tup_b):
        if s == 0 or a == 0 or b == 0:
            continue
        if best is None or abs(s) > abs(best[0]):
            best = (s, a, b)
    return best


def _elem_size(module, sid: int, default: int = 8) -> int:
    if module is None:
        return default
    instr = module.instruction(sid)
    if instr.result is not None:
        return instr.result.type.sizeof()
    return default


def _describe(module, sid: int):
    if module is None:
        return "?", 0
    instr = module.instruction(sid)
    return instr.mnemonic, instr.line


def extract_stride_witnesses(
    ddg: DDG,
    partitions_by_sid: Dict[int, Dict[int, List[int]]],
    module=None,
    limit: int = MAX_STRIDE_WITNESSES,
) -> List[StrideWitness]:
    """Stride-break and fixed-stride-group witnesses for every candidate
    static instruction, capped at ``limit``.

    Per sid, at most the first unit-stride break and the two largest
    non-unit groups (with a partner) are kept; the culprit inference runs
    once per kept witness.
    """
    from repro.runtime.layout import infer_stride_culprit

    witnesses: List[StrideWitness] = []
    for sid, parts in partitions_by_sid.items():
        if len(witnesses) >= limit:
            break
        mnemonic, line = _describe(module, sid) if module else ("?", 0)
        if module is None:
            from repro.ir.instructions import OPCODE_INFO, Opcode

            opcode = ddg.sid_opcodes.get(sid)
            if opcode is not None:
                mnemonic = OPCODE_INFO[Opcode(opcode)].mnemonic
        elem_size = _elem_size(module, sid)
        breaks: List[StrideBreak] = []
        groups: List[NonunitGroup] = []
        for members in parts.values():
            if len(members) < 2:
                continue
            subs = unit_stride_subpartitions(ddg, members, elem_size,
                                             breaks=breaks)
            leftovers = [n for sub in subs if len(sub) < 2 for n in sub]
            if leftovers:
                nonunit_stride_subpartitions(ddg, leftovers, groups=groups)
        for brk in breaks[:1]:
            dom = _dominant_component(brk.stride, brk.prev_tuple, brk.tuple)
            if dom is None:
                continue
            s, a, b = dom
            witnesses.append(StrideWitness(
                witness_id=f"stride:{mnemonic}@L{line}:sid{sid}:unit",
                sid=sid, mnemonic=mnemonic, line=line,
                kind="unit-break",
                node_a=brk.prev_node, node_b=brk.node,
                tuple_a=brk.prev_tuple, tuple_b=brk.tuple,
                stride=brk.stride, addr_a=a, addr_b=b, byte_stride=abs(s),
                culprit=(infer_stride_culprit(module, a, b)
                         if module is not None else None),
            ))
        partnered = sorted(
            (g for g in groups if g.second_node is not None and g.size >= 2),
            key=lambda g: -g.size,
        )
        for gi, grp in enumerate(partnered[:2]):
            dom = _dominant_component(grp.stride, grp.first_tuple,
                                      grp.second_tuple)
            if dom is None:
                continue
            s, a, b = dom
            witnesses.append(StrideWitness(
                witness_id=(
                    f"stride:{mnemonic}@L{line}:sid{sid}:nonunit{gi}"
                ),
                sid=sid, mnemonic=mnemonic, line=line,
                kind="nonunit-group",
                node_a=grp.first_node, node_b=grp.second_node,
                tuple_a=grp.first_tuple, tuple_b=grp.second_tuple,
                stride=grp.stride, addr_a=a, addr_b=b, byte_stride=abs(s),
                group_size=grp.size,
                culprit=(infer_stride_culprit(module, a, b)
                         if module is not None else None),
            ))
    return witnesses[:limit]
