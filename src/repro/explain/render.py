"""Terminal tree rendering of an :class:`~repro.explain.driver.
ExplainReport` — what ``vectra explain`` prints.

Plain ASCII-compatible box drawing; every witness renders its concrete
dynamic instances (node indices, timestamps, byte addresses) next to the
source-level location, so the output reads as evidence, not summary.
"""

from __future__ import annotations

from typing import List

from repro.explain.driver import ExplainReport

_VERDICT_TAGS = {
    "confirmed": "[confirmed]   ",
    "contradicted": "[CONTRADICTED]",
    "structural": "[structural]  ",
    "unsupported": "[unsupported] ",
}


def _chain_lines(witness, prefix: str) -> List[str]:
    lines = []
    for idx, step in enumerate(witness.steps):
        if idx == 0:
            arrow = ""
        elif step.via_memory:
            arrow = "=(memory)=> "
        else:
            arrow = "--(reg)--> "
        lines.append(
            f"{prefix}{arrow}{step.mnemonic} @ line {step.line} "
            f"(node {step.node})"
        )
    return lines


def _fmt_culprit(culprit) -> str:
    if not culprit:
        return ""
    kind = culprit.get("kind", "unknown")
    if kind == "aos-field":
        return (
            f"layout culprit: AoS field {culprit.get('field', '?')} of "
            f"struct {culprit.get('struct', '?')} "
            f"({culprit.get('struct_size', '?')} B) in "
            f"{culprit.get('global', '?')} — AoS→SoA would make it "
            f"contiguous"
        )
    if kind == "transposed-index":
        return (
            f"layout culprit: non-innermost dimension "
            f"{culprit.get('dimension', '?')} of "
            f"{culprit.get('global', '?')} moves fastest "
            f"({culprit.get('row_bytes', '?')} B rows) — transpose or "
            f"interchange"
        )
    if kind == "cross-object":
        return (
            f"accesses span two globals "
            f"({culprit.get('element_a', '?')} vs "
            f"{culprit.get('element_b', '?')})"
        )
    if kind == "fixed-stride":
        return f"regular stride within {culprit.get('global', '?')}"
    return ""


def render_explain(report: ExplainReport) -> str:
    """The drill-down tree for one explained loop."""
    lines = [f"loop {report.loop_name} — explain"]
    lines.append(
        f"|  DDG: {report.num_nodes} nodes, {report.num_edges} edges, "
        f"{report.num_candidate_sids} candidate instruction(s), "
        f"{report.num_memory_flow_edges} store->load flow edge(s)"
    )
    m = report.metrics
    if m is not None:
        lines.append(
            f"|  metrics: concurrency {m.avg_concurrency:.1f}, "
            f"unit {m.percent_vec_unit:.1f}% "
            f"(avg {m.avg_vec_size_unit:.1f}), "
            f"non-unit {m.percent_vec_nonunit:.1f}% "
            f"(avg {m.avg_vec_size_nonunit:.1f})"
        )

    deps = report.dependence_witnesses
    lines.append(f"+- dependence witnesses ({len(deps)})")
    for w in deps:
        lines.append(
            f"|  +- {w.witness_id}: {w.mnemonic} @ line {w.line} splits "
            f"into {w.num_partitions} partitions; chain t={w.timestamp_from}"
            f" -> t={w.timestamp_to}"
            + (" flows through memory" if w.via_memory else "")
        )
        lines.extend(_chain_lines(w, "|  |     "))

    strides = report.stride_witnesses
    lines.append(f"+- stride-break provenance ({len(strides)})")
    for w in strides:
        if w.kind == "unit-break":
            head = (
                f"|  +- {w.witness_id}: {w.mnemonic} @ line {w.line} — "
                f"unit-stride run closed: node {w.node_a} "
                f"@0x{w.addr_a:x} vs node {w.node_b} @0x{w.addr_b:x} "
                f"({w.byte_stride} B apart)"
            )
        else:
            head = (
                f"|  +- {w.witness_id}: {w.mnemonic} @ line {w.line} — "
                f"{w.group_size} instances combinable at fixed "
                f"{w.byte_stride} B stride: node {w.node_a} "
                f"@0x{w.addr_a:x}, node {w.node_b} @0x{w.addr_b:x}"
            )
        lines.append(head)
        culprit = _fmt_culprit(w.culprit)
        if culprit:
            lines.append(f"|  |     {culprit}")

    findings = report.refusals
    lines.append(f"+- refusal cross-examination ({len(findings)})")
    for f in findings:
        tag = _VERDICT_TAGS.get(f.verdict, f"[{f.verdict}]")
        lines.append(f"   +- {tag} {f.reason}")
        lines.append(f"   |     {f.evidence}")
        if f.witness_ids:
            lines.append(
                "   |     witnesses: " + ", ".join(f.witness_ids)
            )
    return "\n".join(lines)
